// Causal-span tests: self-time phase attribution (the phase-sum ==
// end-to-end-latency invariant the bench gate relies on), nested and
// re-entrant roots, overflow truncation, the slow-transaction exemplar
// buffer, chrome-trace export, snapshot augmentation, and a concurrent
// span-tree stress for the sanitizer builds.
//
// Spans are hard-wired to MetricsRegistry::Default() (that is what makes
// them free for the engine to use), so these tests measure *deltas* on the
// default registry rather than constructing private instances.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/vclock.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace sias {
namespace obs {
namespace {

struct PhaseTotals {
  uint64_t count[kNumSpanPhases];
  double vns[kNumSpanPhases];
};

PhaseTotals SnapshotPhases() {
  auto& reg = MetricsRegistry::Default();
  PhaseTotals t{};
  for (size_t i = 0; i < kNumSpanPhases; ++i) {
    std::string name =
        std::string("txn.phase.") + SpanPhaseName(static_cast<SpanPhase>(i));
    Histogram h = reg.GetHistogram(name.c_str())->Snapshot();
    t.count[i] = h.count();
    t.vns[i] = h.Sum();
  }
  return t;
}

TEST(SpanTest, InactiveWithoutRootAndFreeToNest) {
  EXPECT_FALSE(SpanRootActive());
  // Scopes with no root are no-ops — must not crash or record anything.
  SPAN_SCOPE("test", "orphan_scope");
  SPAN_SCOPE_PHASE(SpanPhase::kIoWait, "test", "orphan_io");
  EXPECT_FALSE(SpanRootActive());
}

TEST(SpanTest, PhaseSumEqualsEndToEndLatencyExactly) {
  PhaseTotals before = SnapshotPhases();
  Histogram committed_before =
      MetricsRegistry::Default().GetHistogram("txn.latency.committed")
          ->Snapshot();

  VirtualClock clk(1000);
  {
    TxnSpan root("PhaseSumTxn", &clk);
    ASSERT_TRUE(root.active());
    ASSERT_TRUE(SpanRootActive());
    clk.Advance(100);  // root self time -> apply
    {
      SpanScope lock(SpanPhase::kLockWait, "lock", "wait", /*wait_tag=*/7);
      clk.Advance(300);  // -> lock_wait
    }
    clk.Advance(50);  // -> apply
    {
      SpanScope io(SpanPhase::kIoWait, "pool", "fetch_wait");
      clk.Advance(500);  // -> io_wait
      {
        // Nested: traversal time inside the IO wait goes to the inner span.
        SpanScope trav(SpanPhase::kTraversal, "mvcc", "get_visible");
        clk.Advance(200);  // -> traversal
      }
      clk.Advance(40);  // -> io_wait again
    }
    root.set_xid(42);
    root.set_committed(true);
  }
  EXPECT_FALSE(SpanRootActive());

  PhaseTotals after = SnapshotPhases();
  double phase_sum = 0;
  for (size_t i = 0; i < kNumSpanPhases; ++i) {
    phase_sum += after.vns[i] - before.vns[i];
  }
  // Total virtual time inside the root: 100+300+50+500+200+40 = 1190.
  EXPECT_DOUBLE_EQ(phase_sum, 1190.0);

  // Exact per-phase attribution.
  size_t lock_i = static_cast<size_t>(SpanPhase::kLockWait);
  size_t io_i = static_cast<size_t>(SpanPhase::kIoWait);
  size_t trav_i = static_cast<size_t>(SpanPhase::kTraversal);
  size_t apply_i = static_cast<size_t>(SpanPhase::kApply);
  EXPECT_DOUBLE_EQ(after.vns[lock_i] - before.vns[lock_i], 300.0);
  EXPECT_DOUBLE_EQ(after.vns[io_i] - before.vns[io_i], 540.0);
  EXPECT_DOUBLE_EQ(after.vns[trav_i] - before.vns[trav_i], 200.0);
  EXPECT_DOUBLE_EQ(after.vns[apply_i] - before.vns[apply_i], 150.0);

  // End-to-end latency matches the phase sum: the invariant the
  // phase_sum_within bench gate checks.
  Histogram committed_after =
      MetricsRegistry::Default().GetHistogram("txn.latency.committed")
          ->Snapshot();
  EXPECT_EQ(committed_after.count(), committed_before.count() + 1);
  EXPECT_DOUBLE_EQ(committed_after.Sum() - committed_before.Sum(), 1190.0);
}

TEST(SpanTest, AbortedRootSkipsPhaseHistograms) {
  PhaseTotals before = SnapshotPhases();
  Histogram aborted_before =
      MetricsRegistry::Default().GetHistogram("txn.latency.aborted")
          ->Snapshot();
  VirtualClock clk;
  {
    TxnSpan root("AbortedTxn", &clk);
    SpanScope lock(SpanPhase::kLockWait, "lock", "wait");
    clk.Advance(777);
    // No set_committed(true): the root lands in txn.latency.aborted.
  }
  PhaseTotals after = SnapshotPhases();
  for (size_t i = 0; i < kNumSpanPhases; ++i) {
    EXPECT_EQ(after.count[i], before.count[i]) << "phase " << i;
  }
  Histogram aborted_after =
      MetricsRegistry::Default().GetHistogram("txn.latency.aborted")
          ->Snapshot();
  EXPECT_EQ(aborted_after.count(), aborted_before.count() + 1);
  EXPECT_DOUBLE_EQ(aborted_after.Sum() - aborted_before.Sum(), 777.0);
}

TEST(SpanTest, ReentrantRootIsInertAndCounted) {
  Counter* orphans = MetricsRegistry::Default().GetCounter("obs.span.orphans");
  int64_t before = orphans->Value();
  VirtualClock clk;
  {
    TxnSpan outer("OuterTxn", &clk);
    ASSERT_TRUE(outer.active());
    clk.Advance(10);
    {
      TxnSpan inner("InnerTxn", &clk);
      EXPECT_FALSE(inner.active());
      EXPECT_TRUE(SpanRootActive());  // the outer root keeps the thread
      clk.Advance(20);
    }
    // The inner destructor must not have closed the outer root.
    EXPECT_TRUE(outer.active());
    outer.set_committed(true);
  }
  EXPECT_EQ(orphans->Value(), before + 1);
  EXPECT_FALSE(SpanRootActive());
}

TEST(SpanTest, DepthOverflowTruncatesButKeepsTime) {
  Counter* truncated =
      MetricsRegistry::Default().GetCounter("obs.span.truncated");
  int64_t trunc_before = truncated->Value();
  Histogram committed_before =
      MetricsRegistry::Default().GetHistogram("txn.latency.committed")
          ->Snapshot();
  VirtualClock clk;
  {
    TxnSpan root("DeepTxn", &clk);
    // Recursive nesting far past kMaxSpanDepth: the overflowed levels are
    // inert but virtual time must still be attributed.
    struct Nest {
      static void Go(VirtualClock* c, int depth) {
        if (depth == 0) {
          c->Advance(1000);
          return;
        }
        SpanScope s(SpanPhase::kTraversal, "test", "deep");
        c->Advance(1);
        Go(c, depth - 1);
      }
    };
    Nest::Go(&clk, kMaxSpanDepth + 8);
    root.set_committed(true);
  }
  EXPECT_GT(truncated->Value(), trunc_before);
  Histogram committed_after =
      MetricsRegistry::Default().GetHistogram("txn.latency.committed")
          ->Snapshot();
  // All virtual time accounted: 24 levels x 1 + 1000 at the bottom.
  EXPECT_DOUBLE_EQ(committed_after.Sum() - committed_before.Sum(),
                   static_cast<double>(kMaxSpanDepth + 8) + 1000.0);
}

TEST(SpanTest, FinishClosesEarlyAndDtorIsNoop) {
  Histogram committed_before =
      MetricsRegistry::Default().GetHistogram("txn.latency.committed")
          ->Snapshot();
  VirtualClock clk;
  {
    TxnSpan root("EarlyFinish", &clk);
    clk.Advance(100);
    root.set_committed(true);
    root.Finish();
    EXPECT_FALSE(root.active());
    EXPECT_FALSE(SpanRootActive());
    clk.Advance(5000);  // post-Finish time must stay out of the latency
  }
  Histogram committed_after =
      MetricsRegistry::Default().GetHistogram("txn.latency.committed")
          ->Snapshot();
  EXPECT_EQ(committed_after.count(), committed_before.count() + 1);
  EXPECT_DOUBLE_EQ(committed_after.Sum() - committed_before.Sum(), 100.0);
}

TEST(SpanTest, GcDeferPhaseRecordsUnderRoot) {
  PhaseTotals before = SnapshotPhases();
  VirtualClock clk;
  {
    TxnSpan root("GcInterfered", &clk);
    {
      SpanScope gc(SpanPhase::kGcDefer, "maintenance", "vacuum");
      clk.Advance(900);
    }
    root.set_committed(true);
  }
  PhaseTotals after = SnapshotPhases();
  size_t gc_i = static_cast<size_t>(SpanPhase::kGcDefer);
  EXPECT_DOUBLE_EQ(after.vns[gc_i] - before.vns[gc_i], 900.0);
}

TEST(SpanAggregatorTest, ExemplarBufferKeepsTopKSlowest) {
  SpanAggregator agg;  // private instance: deterministic, no engine noise
  SpanRecord rec;
  rec.category = "txn";
  rec.name = "T";
  VDuration phases[kNumSpanPhases] = {};
  // 20 transactions with latencies 1..20: only 13..20 may survive in the
  // 8-slot buffer.
  for (uint64_t i = 1; i <= 20; ++i) {
    rec.begin = 0;
    rec.end = i;
    phases[static_cast<size_t>(SpanPhase::kApply)] = i;
    agg.RecordCommitted("T", /*xid=*/i, /*begin=*/0, /*latency=*/i, phases,
                        &rec, 1);
  }
  EXPECT_EQ(agg.exemplar_count(), static_cast<size_t>(kSpanExemplarSlots));
  EXPECT_EQ(agg.exemplar_floor(), 13u);

  // A faster transaction must not displace anything.
  agg.RecordCommitted("T", 99, 0, /*latency=*/5, phases, &rec, 1);
  EXPECT_EQ(agg.exemplar_floor(), 13u);

  // A slower one replaces the fastest retained exemplar.
  agg.RecordCommitted("T", 100, 0, /*latency=*/50, phases, &rec, 1);
  EXPECT_EQ(agg.exemplar_floor(), 14u);

  agg.Reset();
  EXPECT_EQ(agg.exemplar_count(), 0u);
  EXPECT_EQ(agg.exemplar_floor(), 0u);
}

TEST(SpanAggregatorTest, ChromeTraceExportShape) {
  SpanAggregator agg;
  SpanRecord recs[2];
  recs[0] = {"txn", "NewOrder", /*begin=*/2000, /*end=*/8000, /*wait_tag=*/0,
             /*depth=*/0, static_cast<uint8_t>(SpanPhase::kApply)};
  recs[1] = {"lock", "wait", /*begin=*/3000, /*end=*/5000, /*wait_tag=*/17,
             /*depth=*/1, static_cast<uint8_t>(SpanPhase::kLockWait)};
  VDuration phases[kNumSpanPhases] = {};
  agg.RecordCommitted("NewOrder", /*xid=*/42, 2000, 6000, phases, recs, 2);

  std::string json = agg.ExemplarsToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"NewOrder\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"lock\""), std::string::npos);
  EXPECT_NE(json.find("\"phase\":\"lock_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"xid\":42"), std::string::npos);
  EXPECT_NE(json.find("\"wait_tag\":17"), std::string::npos);
  // Timestamps are virtual microseconds: 3000ns -> 3.000us, dur 2.000us.
  EXPECT_NE(json.find("\"ts\":3.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.000"), std::string::npos);

  agg.Reset();
  EXPECT_EQ(agg.ExemplarsToChromeTraceJson(), "{\"traceEvents\":[]}");
}

TEST(SpanAggregatorTest, AugmenterInjectsPerTypeLatencyIntoSnapshots) {
  VirtualClock clk;
  {
    TxnSpan root("AugmentProbe", &clk);
    clk.Advance(1234);
    root.set_committed(true);
  }
  // The default registry's Snapshot() must carry the per-type histogram
  // (snake_cased) injected by the registered augmenter.
  MetricsSnapshot snap = MetricsRegistry::Default().Snapshot();
  ASSERT_EQ(snap.histograms.count("txn.latency.augment_probe"), 1u)
      << snap.ToJson();
  const HistogramSummary& s = snap.histograms.at("txn.latency.augment_probe");
  EXPECT_GE(s.count, 1u);
  EXPECT_GT(s.p999, 0u);
  // And it round-trips through JSON with the p999_ns field.
  std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"txn.latency.augment_probe\""), std::string::npos);
  EXPECT_NE(json.find("\"p999_ns\""), std::string::npos);
}

TEST(SpanTest, ConcurrentSpanTreesStayIndependent) {
  // One root per thread, each on its own virtual clock: per-thread span
  // state must never bleed across threads (TSan checks the aggregator and
  // histogram sharing).
  constexpr int kThreads = 8;
  constexpr int kTxnsPerThread = 200;
  Histogram committed_before =
      MetricsRegistry::Default().GetHistogram("txn.latency.committed")
          ->Snapshot();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      VirtualClock clk(static_cast<VTime>(t) * 1000000);
      for (int i = 0; i < kTxnsPerThread; ++i) {
        TxnSpan root("StressTxn", &clk);
        clk.Advance(10);
        {
          SpanScope lock(SpanPhase::kLockWait, "lock", "wait",
                         static_cast<uint64_t>(t));
          clk.Advance(20);
        }
        {
          SpanScope io(SpanPhase::kIoWait, "pool", "fetch_wait");
          clk.Advance(30);
          SpanScope trav(SpanPhase::kTraversal, "mvcc", "get_visible");
          clk.Advance(40);
        }
        root.set_xid(static_cast<uint64_t>(t * kTxnsPerThread + i));
        root.set_committed(true);
      }
    });
  }
  for (auto& th : threads) th.join();
  Histogram committed_after =
      MetricsRegistry::Default().GetHistogram("txn.latency.committed")
          ->Snapshot();
  uint64_t n = uint64_t{kThreads} * kTxnsPerThread;
  EXPECT_EQ(committed_after.count() - committed_before.count(), n);
  // Every transaction takes exactly 100 vns; the phase split is fixed.
  EXPECT_DOUBLE_EQ(committed_after.Sum() - committed_before.Sum(),
                   static_cast<double>(n) * 100.0);
  EXPECT_GE(SpanAggregator::Default().exemplar_count(), 1u);
}

}  // namespace
}  // namespace obs
}  // namespace sias
