// Unit tests for src/common: Status/Result, Slice, Random, CRC32C,
// Histogram, virtual clocks and core ID types.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/histogram.h"
#include "common/latch.h"
#include "common/random.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"
#include "common/vclock.h"

namespace sias {
namespace {

TEST(StatusTest, OkIsDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing tuple");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing tuple");
  EXPECT_EQ(s.ToString(), "NotFound: missing tuple");
}

TEST(StatusTest, RetryableClassification) {
  EXPECT_TRUE(Status::SerializationFailure("x").IsRetryable());
  EXPECT_TRUE(Status::LockTimeout("x").IsRetryable());
  EXPECT_FALSE(Status::Corruption("x").IsRetryable());
  EXPECT_FALSE(Status::OK().IsRetryable());
}

TEST(StatusTest, CopyIsCheapAndShared) {
  Status a = Status::IoError("disk gone");
  Status b = a;
  EXPECT_EQ(b.message(), "disk gone");
  EXPECT_EQ(b.code(), StatusCode::kIoError);
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

TEST(ResultTest, ValueAndError) {
  auto good = ParsePositive(7);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 7);

  auto bad = ParsePositive(-1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.ValueOr(42), 42);
}

TEST(SliceTest, CompareIsMemcmpOrder) {
  EXPECT_LT(Slice("abc").Compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abcd").Compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").Compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("") < Slice("a"));
}

TEST(SliceTest, Views) {
  std::string s = "hello";
  Slice sl(s);
  EXPECT_EQ(sl.size(), 5u);
  EXPECT_EQ(sl.ToString(), "hello");
  EXPECT_EQ(sl.View(), std::string_view("hello"));
}

TEST(TidTest, PackRoundTrip) {
  Tid t{123456, 789};
  Tid u = Tid::Unpack(t.Pack());
  EXPECT_EQ(t, u);
  EXPECT_TRUE(t.valid());
  EXPECT_FALSE(kInvalidTid.valid());
}

TEST(PageIdTest, HashSpreads) {
  std::set<size_t> hashes;
  for (uint32_t r = 1; r < 5; ++r) {
    for (uint32_t p = 0; p < 100; ++p) {
      hashes.insert(std::hash<PageId>{}(PageId{r, p}));
    }
  }
  EXPECT_GT(hashes.size(), 390u);  // near-zero collisions expected
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RandomTest, UniformInRange) {
  Random r(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = r.Uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RandomTest, NURandInRange) {
  Random r(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.NURand(255, 0, 999, 123);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 999);
  }
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random r(9);
  for (int i = 0; i < 1000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Crc32cTest, KnownVector) {
  // CRC32C("123456789") == 0xE3069283 (iSCSI test vector).
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32cTest, DetectsBitFlip) {
  std::string data(1024, 'x');
  uint32_t base = Crc32c(data.data(), data.size());
  data[100] ^= 1;
  EXPECT_NE(base, Crc32c(data.data(), data.size()));
}

TEST(Crc32cTest, MaskRoundTrip) {
  uint32_t crc = Crc32c("siasdb", 6);
  EXPECT_EQ(UnmaskCrc(MaskCrc(crc)), crc);
  EXPECT_NE(MaskCrc(crc), crc);
}

TEST(CodingTest, FixedRoundTrip) {
  uint8_t buf[8];
  EncodeFixed64(buf, 0x0123456789abcdefull);
  EXPECT_EQ(DecodeFixed64(buf), 0x0123456789abcdefull);
  EncodeFixed32(buf, 0xdeadbeefu);
  EXPECT_EQ(DecodeFixed32(buf), 0xdeadbeefu);
  EncodeFixed16(buf, 0xbeefu);
  EXPECT_EQ(DecodeFixed16(buf), 0xbeefu);
}

TEST(CodingTest, BigEndianPreservesOrder) {
  uint8_t a[8], b[8];
  EncodeBigEndian64(a, 100);
  EncodeBigEndian64(b, 200);
  EXPECT_LT(memcmp(a, b, 8), 0);
  EXPECT_EQ(DecodeBigEndian64(a), 100u);
}

TEST(VClockTest, AdvanceSemantics) {
  VirtualClock c(100);
  c.Advance(50);
  EXPECT_EQ(c.now(), 150u);
  c.AdvanceTo(120);  // never goes backwards
  EXPECT_EQ(c.now(), 150u);
  c.AdvanceTo(300);
  EXPECT_EQ(c.now(), 300u);
}

TEST(AtomicVTimeTest, ReserveQueues) {
  AtomicVTime busy(0);
  // Two back-to-back reservations at t=0 must serialize.
  VTime s1 = busy.Reserve(0, 100);
  VTime s2 = busy.Reserve(0, 100);
  EXPECT_EQ(s1, 0u);
  EXPECT_EQ(s2, 100u);
  // A late arrival starts at its own arrival time.
  VTime s3 = busy.Reserve(1000, 10);
  EXPECT_EQ(s3, 1000u);
}

TEST(AtomicVTimeTest, ConcurrentReservationsNeverOverlap) {
  AtomicVTime busy(0);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::vector<VTime>> starts(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        starts[t].push_back(busy.Reserve(0, 7));
      }
    });
  }
  for (auto& th : threads) th.join();
  std::set<VTime> all;
  for (auto& v : starts) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), static_cast<size_t>(kThreads * kPerThread));
  // Intervals are length 7 and disjoint: consecutive starts differ by >= 7.
  VTime prev = ~0ull;
  for (VTime s : all) {
    if (prev != ~0ull) {
      EXPECT_GE(s, prev + 7);
    }
    prev = s;
  }
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i * kVMillisecond);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.Mean(), 50.5 * kVMillisecond, 2.0 * kVMillisecond);
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 50.0 * kVMillisecond,
              5.0 * kVMillisecond);
  EXPECT_GE(h.Max(), 100 * kVMillisecond);
  EXPECT_LE(h.Min(), 1 * kVMillisecond + kVMillisecond / 10);
}

TEST(HistogramTest, MergeAddsUp) {
  Histogram a, b;
  a.Record(10 * kVMicrosecond);
  b.Record(30 * kVMicrosecond);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_NEAR(a.Mean(), 20.0 * kVMicrosecond, kVMicrosecond);
}

TEST(HistogramTest, EmptyIsSane) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(99), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
}

// Intra-bucket interpolation: tail percentiles must track the true sample
// quantile to well under the ~4% geometric bucket width, instead of
// snapping to a bucket edge.

TEST(HistogramTest, InterpolatedTailOnUniformDistribution) {
  Histogram h;
  for (int i = 1; i <= 100000; ++i) h.Record(static_cast<VDuration>(i));
  // True p999 of 1..100000 uniform is 99900; allow 2% (half the bucket).
  EXPECT_NEAR(static_cast<double>(h.Percentile(99.9)), 99900.0, 2000.0);
  EXPECT_NEAR(static_cast<double>(h.Percentile(99)), 99000.0, 2000.0);
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 50000.0, 1500.0);
}

TEST(HistogramTest, InterpolatedTailOnBimodalDistribution) {
  // 990 fast ops at ~10ms, 10 slow ops at 1s: p50 must sit in the fast
  // mode, p999 and max must see the slow mode's bucket (within 5%).
  Histogram h;
  for (int i = 0; i < 990; ++i) h.Record(10 * kVMillisecond);
  for (int i = 0; i < 10; ++i) h.Record(1 * kVSecond);
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)),
              10.0 * kVMillisecond, 0.5 * kVMillisecond);
  EXPECT_NEAR(static_cast<double>(h.Percentile(99.9)),
              1.0 * kVSecond, 0.05 * kVSecond);
  EXPECT_EQ(h.Max(), 1 * kVSecond);
}

TEST(HistogramTest, PercentilesStayWithinObservedRange) {
  // Interpolation must never extrapolate past the recorded min/max.
  Histogram h;
  h.Record(7 * kVMicrosecond);
  h.Record(7 * kVMicrosecond);
  EXPECT_EQ(h.Percentile(0.1), 7 * kVMicrosecond);
  EXPECT_EQ(h.Percentile(99.9), 7 * kVMicrosecond);
}

TEST(LatchTest, SpinLatchMutualExclusion) {
  SpinLatch latch;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        SpinLatchGuard g(latch);
        counter++;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 40000);
}

TEST(FormatTest, VDuration) {
  EXPECT_EQ(FormatVDuration(5 * kVSecond), "5.000s");
  EXPECT_EQ(FormatVDuration(2 * kVMillisecond), "2.000ms");
  EXPECT_EQ(FormatVDuration(3 * kVMicrosecond), "3.00us");
  EXPECT_EQ(FormatVDuration(42), "42ns");
}

TEST(VersionSchemeTest, Names) {
  EXPECT_STREQ(ToString(VersionScheme::kSi), "SI");
  EXPECT_STREQ(ToString(VersionScheme::kSiasChains), "SIAS-Chains");
  EXPECT_STREQ(ToString(VersionScheme::kSiasV), "SIAS-V");
}

}  // namespace
}  // namespace sias
