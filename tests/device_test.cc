// Unit tests for the device layer: MemDevice, FlashSsd (FTL, GC, wear),
// Hdd timing model, Raid0 striping, and trace recording/analysis.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "common/random.h"
#include "device/flash_ssd.h"
#include "obs/metrics.h"
#include "device/hdd.h"
#include "device/mem_device.h"
#include "device/raid0.h"
#include "device/trace.h"

namespace sias {
namespace {

std::vector<uint8_t> Pattern(size_t n, uint8_t seed) {
  std::vector<uint8_t> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = static_cast<uint8_t>(seed + i * 7);
  return v;
}

TEST(MemDeviceTest, ReadBackWhatWasWritten) {
  MemDevice dev(1 << 20);
  auto data = Pattern(kPageSize, 3);
  VirtualClock clk;
  ASSERT_TRUE(dev.Write(8192, kPageSize, data.data(), &clk).ok());
  std::vector<uint8_t> out(kPageSize);
  ASSERT_TRUE(dev.Read(8192, kPageSize, out.data(), &clk).ok());
  EXPECT_EQ(memcmp(data.data(), out.data(), kPageSize), 0);
}

TEST(MemDeviceTest, UnwrittenReadsZero) {
  MemDevice dev(1 << 20);
  std::vector<uint8_t> out(4096, 0xff);
  ASSERT_TRUE(dev.Read(0, 4096, out.data(), nullptr).ok());
  for (uint8_t b : out) EXPECT_EQ(b, 0);
}

TEST(MemDeviceTest, RejectsUnalignedAndOutOfRange) {
  MemDevice dev(1 << 20);
  uint8_t buf[1024];
  EXPECT_FALSE(dev.Read(100, 512, buf, nullptr).ok());
  EXPECT_FALSE(dev.Read(0, 100, buf, nullptr).ok());
  EXPECT_FALSE(dev.Read((1 << 20), 512, buf, nullptr).ok());
  EXPECT_FALSE(dev.Write((1 << 20) - 512, 1024, buf, nullptr).ok());
}

TEST(MemDeviceTest, LatencyCharged) {
  MemDevice dev(1 << 20, /*read=*/100, /*write=*/300);
  uint8_t buf[512] = {};
  VirtualClock clk;
  ASSERT_TRUE(dev.Read(0, 512, buf, &clk).ok());
  EXPECT_EQ(clk.now(), 100u);
  ASSERT_TRUE(dev.Write(0, 512, buf, &clk).ok());
  EXPECT_EQ(clk.now(), 400u);
}

FlashConfig SmallFlash() {
  FlashConfig cfg;
  cfg.capacity_bytes = 4ull << 20;  // 4 MB keeps GC pressure easy to induce
  cfg.num_channels = 4;
  cfg.pages_per_block = 16;
  return cfg;
}

TEST(FlashSsdTest, DataIntegrityRandomWorkload) {
  FlashSsd ssd(SmallFlash());
  Random rng(1);
  // Shadow model.
  std::vector<std::vector<uint8_t>> shadow(64);
  VirtualClock clk;
  for (int iter = 0; iter < 500; ++iter) {
    uint64_t page = rng.Uniform(0, 63);
    if (rng.OneIn(3) && !shadow[page].empty()) {
      std::vector<uint8_t> out(kPageSize);
      ASSERT_TRUE(ssd.Read(page * kPageSize, kPageSize, out.data(), &clk).ok());
      EXPECT_EQ(memcmp(out.data(), shadow[page].data(), kPageSize), 0)
          << "page " << page;
    } else {
      auto data = Pattern(kPageSize, static_cast<uint8_t>(iter));
      ASSERT_TRUE(
          ssd.Write(page * kPageSize, kPageSize, data.data(), &clk).ok());
      shadow[page] = data;
    }
  }
  EXPECT_TRUE(ssd.CheckFtlInvariants().ok());
}

TEST(FlashSsdTest, ReadWriteAsymmetry) {
  FlashSsd ssd(SmallFlash());
  uint8_t buf[kPageSize] = {};
  VirtualClock clk;
  ASSERT_TRUE(ssd.Write(0, kPageSize, buf, &clk).ok());
  VDuration write_cost = clk.now();
  VTime before_read = clk.now();
  ASSERT_TRUE(ssd.Read(0, kPageSize, buf, &clk).ok());
  VDuration read_cost = clk.now() - before_read;
  // 8 KB = two 4 KB flash pages; striped across channels => one latency each.
  EXPECT_GT(write_cost, read_cost);
  EXPECT_GE(write_cost, ssd.config().page_program_latency);
  EXPECT_GE(read_cost, ssd.config().page_read_latency);
}

TEST(FlashSsdTest, ChannelParallelismSpeedsUpLargeIo) {
  // Reading N pages spread over channels should take ~1 page latency, not N.
  FlashConfig cfg = SmallFlash();
  FlashSsd ssd(cfg);
  std::vector<uint8_t> big(cfg.flash_page_size * cfg.num_channels);
  VirtualClock clk;
  ASSERT_TRUE(ssd.Write(0, big.size(), big.data(), &clk).ok());
  VTime before_read = clk.now();
  ASSERT_TRUE(ssd.Read(0, big.size(), big.data(), &clk).ok());
  // Perfect parallelism would be exactly one read latency; allow 2x slack.
  EXPECT_LE(clk.now() - before_read, 2 * cfg.page_read_latency);
}

TEST(FlashSsdTest, OverwriteTriggersGcAndErases) {
  FlashSsd ssd(SmallFlash());
  auto data = Pattern(kPageSize, 9);
  VirtualClock clk;
  // Hammer a small logical range until physical space must be reclaimed.
  for (int i = 0; i < 4000; ++i) {
    uint64_t page = static_cast<uint64_t>(i % 16);
    ASSERT_TRUE(
        ssd.Write(page * kPageSize, kPageSize, data.data(), &clk).ok());
  }
  DeviceStats s = ssd.stats();
  EXPECT_GT(s.flash_block_erases, 0u);
  EXPECT_GE(s.flash_page_programs, 8000u);  // 2 flash pages per 8 KB write
  EXPECT_TRUE(ssd.CheckFtlInvariants().ok());
  WearStats w = ssd.wear();
  EXPECT_EQ(w.total_erases, s.flash_block_erases);
  EXPECT_GT(w.avg_block_erases, 0.0);
}

TEST(FlashSsdTest, TrimUnmapsAndReadsZero) {
  FlashSsd ssd(SmallFlash());
  auto data = Pattern(kPageSize, 5);
  VirtualClock clk;
  ASSERT_TRUE(ssd.Write(0, kPageSize, data.data(), &clk).ok());
  ASSERT_TRUE(ssd.Trim(0, kPageSize).ok());
  std::vector<uint8_t> out(kPageSize, 0xaa);
  ASSERT_TRUE(ssd.Read(0, kPageSize, out.data(), &clk).ok());
  // Trimmed page has no mapping: the simulator serves zeros.
  EXPECT_TRUE(ssd.CheckFtlInvariants().ok());
}

TEST(FlashSsdTest, WriteAmplificationGrowsUnderRandomOverwrite) {
  FlashConfig cfg = SmallFlash();
  FlashSsd ssd(cfg);
  Random rng(3);
  auto data = Pattern(kPageSize, 1);
  VirtualClock clk;
  uint64_t logical_pages = cfg.capacity_bytes / kPageSize;
  for (int i = 0; i < 6000; ++i) {
    uint64_t page = rng.Uniform(0, logical_pages - 1);
    ASSERT_TRUE(
        ssd.Write(page * kPageSize, kPageSize, data.data(), &clk).ok());
  }
  EXPECT_GT(ssd.stats().WriteAmplification(), 1.05);
  EXPECT_TRUE(ssd.CheckFtlInvariants().ok());
}

TEST(HddTest, SequentialBeatsRandom) {
  HddConfig cfg;
  cfg.capacity_bytes = 1ull << 30;
  Hdd seq_dev(cfg), rnd_dev(cfg);
  uint8_t buf[kPageSize] = {};
  VirtualClock seq, rnd;
  uint64_t pos = 0;
  Random rng(11);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(seq_dev.Write(pos, kPageSize, buf, &seq).ok());
    pos += kPageSize;
    uint64_t rpos = rng.Uniform(0, (cfg.capacity_bytes / kPageSize) - 1) *
                    kPageSize;
    ASSERT_TRUE(rnd_dev.Write(rpos, kPageSize, buf, &rnd).ok());
  }
  EXPECT_LT(seq.now() * 5, rnd.now());  // sequential >5x faster
}

TEST(HddTest, SymmetricReadWriteCosts) {
  HddConfig cfg;
  Hdd d1(cfg), d2(cfg);
  uint8_t buf[kPageSize] = {};
  VirtualClock w, r;
  ASSERT_TRUE(d1.Write(1 << 20, kPageSize, buf, &w).ok());
  ASSERT_TRUE(d2.Read(1 << 20, kPageSize, buf, &r).ok());
  EXPECT_EQ(w.now(), r.now());  // identical positioning + transfer model
}

TEST(HddTest, DataRoundTrip) {
  Hdd dev(HddConfig{});
  auto data = Pattern(kPageSize, 77);
  VirtualClock clk;
  ASSERT_TRUE(dev.Write(65536, kPageSize, data.data(), &clk).ok());
  std::vector<uint8_t> out(kPageSize);
  ASSERT_TRUE(dev.Read(65536, kPageSize, out.data(), &clk).ok());
  EXPECT_EQ(memcmp(out.data(), data.data(), kPageSize), 0);
}

std::unique_ptr<Raid0> MakeRaid(size_t n, uint64_t member_cap = 16ull << 20) {
  std::vector<std::unique_ptr<StorageDevice>> members;
  for (size_t i = 0; i < n; ++i) {
    members.push_back(std::make_unique<MemDevice>(member_cap, 100, 100));
  }
  return std::make_unique<Raid0>(std::move(members));
}

TEST(Raid0Test, CapacityIsSum) {
  auto raid = MakeRaid(4, 16ull << 20);
  EXPECT_EQ(raid->capacity_bytes(), 64ull << 20);
}

TEST(Raid0Test, RoundTripAcrossStripeBoundaries) {
  auto raid = MakeRaid(2);
  // 256 KB spans 4 stripes of 64 KB.
  auto data = Pattern(256 * 1024, 21);
  VirtualClock clk;
  uint64_t offset = 60 * 1024 + 4096;  // deliberately not stripe-aligned
  offset -= offset % 512;
  ASSERT_TRUE(raid->Write(offset, data.size(), data.data(), &clk).ok());
  std::vector<uint8_t> out(data.size());
  ASSERT_TRUE(raid->Read(offset, out.size(), out.data(), &clk).ok());
  EXPECT_EQ(memcmp(out.data(), data.data(), data.size()), 0);
}

TEST(Raid0Test, ParallelServiceTakesMaxNotSum) {
  auto raid = MakeRaid(2);
  // One 128 KB I/O = two 64 KB stripes on two members; each member charges
  // 100 ns; parallel completion should be ~100 ns, not 200.
  std::vector<uint8_t> buf(128 * 1024);
  VirtualClock clk;
  ASSERT_TRUE(raid->Write(0, buf.size(), buf.data(), &clk).ok());
  EXPECT_EQ(clk.now(), 100u);
}

TEST(Raid0Test, StatsAggregate) {
  auto raid = MakeRaid(3);
  std::vector<uint8_t> buf(192 * 1024);
  VirtualClock clk;
  ASSERT_TRUE(raid->Write(0, buf.size(), buf.data(), &clk).ok());
  DeviceStats s = raid->stats();
  EXPECT_EQ(s.bytes_written, buf.size());
  EXPECT_EQ(s.write_ops, 3u);  // one sub-op per member
}

TEST(TraceTest, RecordsAndTotals) {
  TraceRecorder trace;
  MemDevice dev(1 << 20);
  dev.set_trace(&trace);
  uint8_t buf[kPageSize] = {};
  VirtualClock clk(5 * kVMillisecond);
  ASSERT_TRUE(dev.Write(0, kPageSize, buf, &clk).ok());
  ASSERT_TRUE(dev.Read(8192, kPageSize, buf, &clk).ok());
  EXPECT_EQ(trace.total_bytes_written(), kPageSize);
  EXPECT_EQ(trace.total_bytes_read(), kPageSize);
  auto events = trace.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].op, TraceOp::kWrite);
  EXPECT_EQ(events[0].time, 5 * kVMillisecond);
  EXPECT_EQ(events[1].op, TraceOp::kRead);
}

TEST(TraceTest, BoundedBufferKeepsExactTotals) {
  TraceRecorder trace(/*max_events=*/4);
  for (int i = 0; i < 10; ++i) {
    trace.Record(i, i * 8192, 8192, TraceOp::kWrite);
  }
  EXPECT_EQ(trace.events().size(), 4u);
  EXPECT_EQ(trace.dropped_events(), 6u);
  EXPECT_EQ(trace.total_bytes_written(), 10u * 8192);
}

TEST(TraceTest, AnalysisSequentialVsScattered) {
  std::vector<TraceEvent> seq, scat;
  for (uint32_t i = 0; i < 100; ++i) {
    seq.push_back(TraceEvent{i, static_cast<uint64_t>(i) * 8192, 8192,
                             TraceOp::kWrite});
    scat.push_back(TraceEvent{i, (static_cast<uint64_t>(i) * 7919 % 4096) << 20,
                              8192, TraceOp::kWrite});
  }
  TraceAnalysis a_seq = AnalyzeTrace(seq);
  TraceAnalysis a_scat = AnalyzeTrace(scat);
  EXPECT_GT(a_seq.write_sequentiality, 0.95);
  EXPECT_LT(a_scat.write_sequentiality, 0.1);
  EXPECT_LT(a_seq.write_regions_1mb, a_scat.write_regions_1mb);
}

// -- Asynchronous submit/complete interface ---------------------------------

TEST(AsyncIoTest, SubmittedReadsOverlapNotSerialize) {
  // N reads submitted at the same instant complete after ~one latency, not
  // N of them: the channel-calendar reservations key on arrival time.
  MemDevice dev(1 << 20, /*read=*/100, /*write=*/300);
  auto data = Pattern(kPageSize, 9);
  for (int p = 0; p < 4; ++p) {
    ASSERT_TRUE(
        dev.Write(p * kPageSize, kPageSize, data.data(), nullptr).ok());
  }
  VirtualClock clk(1000);
  std::vector<std::vector<uint8_t>> out(4, std::vector<uint8_t>(kPageSize));
  std::vector<IoHandle> handles;
  for (int p = 0; p < 4; ++p) {
    IoRequest req;
    req.op = IoOp::kRead;
    req.offset = p * kPageSize;
    req.len = kPageSize;
    req.out = out[p].data();
    auto h = dev.Submit(req, clk.now());
    ASSERT_TRUE(h.ok());
    handles.push_back(*h);
  }
  for (auto h : handles) ASSERT_TRUE(dev.Wait(h, &clk).ok());
  EXPECT_EQ(clk.now(), 1100u);  // one read latency, not four
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(memcmp(out[p].data(), data.data(), kPageSize), 0);
  }
}

TEST(AsyncIoTest, PollReportsCompletionOnlyOnceDue) {
  MemDevice dev(1 << 20, /*read=*/100, /*write=*/300);
  uint8_t buf[kPageSize] = {};
  IoRequest req;
  req.op = IoOp::kRead;
  req.offset = 0;
  req.len = kPageSize;
  req.out = buf;
  auto h = dev.Submit(req, 5000);
  ASSERT_TRUE(h.ok());
  Status st;
  EXPECT_FALSE(dev.Poll(*h, 5099, &st));  // still in flight at t+99
  ASSERT_TRUE(dev.Poll(*h, 5100, &st));   // due exactly at t+latency
  EXPECT_TRUE(st.ok());
  EXPECT_FALSE(dev.Poll(*h, 6000, &st));  // handle already reaped
}

TEST(AsyncIoTest, FlashChannelsServeDepthInParallel) {
  // On a multi-channel flash device a depth-8 burst of page reads lands on
  // distinct channels and the makespan stays well under the serial sum;
  // per-channel busy time accounts every read exactly once.
  FlashSsd ssd(SmallFlash());
  auto data = Pattern(kPageSize, 5);
  for (int p = 0; p < 8; ++p) {
    ASSERT_TRUE(
        ssd.Write(p * kPageSize, kPageSize, data.data(), nullptr).ok());
  }
  uint64_t busy_before = 0;
  for (uint64_t ns : ssd.telemetry().channel_busy_ns) busy_before += ns;
  const VTime t0 = 1 * kVSecond;
  VirtualClock clk(t0);
  std::vector<std::vector<uint8_t>> out(8, std::vector<uint8_t>(kPageSize));
  std::vector<IoHandle> handles;
  for (int p = 0; p < 8; ++p) {
    IoRequest req;
    req.op = IoOp::kRead;
    req.offset = p * kPageSize;
    req.len = kPageSize;
    req.out = out[p].data();
    auto h = ssd.Submit(req, t0);
    ASSERT_TRUE(h.ok());
    handles.push_back(*h);
  }
  for (auto h : handles) ASSERT_TRUE(ssd.Wait(h, &clk).ok());
  // 8 KB pages are two 4 KB NAND pages each: 16 NAND reads over 4 channels
  // cannot beat 4 per channel, but must beat the serial 16.
  const VDuration serial = 16 * ssd.config().page_read_latency;
  EXPECT_LT(clk.now() - t0, serial / 2);
  uint64_t busy_after = 0;
  for (uint64_t ns : ssd.telemetry().channel_busy_ns) busy_after += ns;
  EXPECT_EQ(busy_after - busy_before, 16 * ssd.config().page_read_latency);
  for (int p = 0; p < 8; ++p) {
    EXPECT_EQ(memcmp(out[p].data(), data.data(), kPageSize), 0);
  }
}

TEST(AsyncIoTest, InflightGaugeBalancesAfterWaitAndCancel) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  obs::Gauge* inflight = reg.GetGauge("io.inflight");
  int64_t before = inflight->Value();
  MemDevice dev(1 << 20, 100, 300);
  uint8_t buf[kPageSize] = {};
  IoRequest req;
  req.op = IoOp::kRead;
  req.offset = 0;
  req.len = kPageSize;
  req.out = buf;
  auto h1 = dev.Submit(req, 0);
  auto h2 = dev.Submit(req, 0);
  ASSERT_TRUE(h1.ok() && h2.ok());
  EXPECT_EQ(inflight->Value(), before + 2);
  VirtualClock clk;
  ASSERT_TRUE(dev.Wait(*h1, &clk).ok());
  ASSERT_TRUE(dev.Cancel(*h2, &clk).ok());
  EXPECT_EQ(inflight->Value(), before);
}

// Satellite regression: WriteAmplification on a device that has programmed
// nothing must be a clean 1.0, never a division by zero (inf/NaN leaking
// into bench JSON and report ratios).
TEST(DeviceStatsTest, WriteAmplificationDefinedWithoutPrograms) {
  DeviceStats fresh;
  EXPECT_DOUBLE_EQ(fresh.WriteAmplification(), 1.0);

  FlashSsd ssd(SmallFlash());
  EXPECT_DOUBLE_EQ(ssd.stats().WriteAmplification(), 1.0);

  // Read-only use keeps host programs at zero; WA must stay defined.
  uint8_t buf[kPageSize] = {};
  ASSERT_TRUE(ssd.Read(0, kPageSize, buf, nullptr).ok());
  double wa = ssd.stats().WriteAmplification();
  EXPECT_DOUBLE_EQ(wa, 1.0);
  EXPECT_TRUE(std::isfinite(wa));
}

TEST(TraceTest, AnalysisCountsReadsAndWrites) {
  std::vector<TraceEvent> ev;
  ev.push_back(TraceEvent{1, 0, 8192, TraceOp::kRead});
  ev.push_back(TraceEvent{2, 8192, 8192, TraceOp::kWrite});
  ev.push_back(TraceEvent{3, 16384, 4096, TraceOp::kRead});
  TraceAnalysis a = AnalyzeTrace(ev);
  EXPECT_EQ(a.read_ops, 2u);
  EXPECT_EQ(a.write_ops, 1u);
  EXPECT_EQ(a.bytes_read, 12288u);
  EXPECT_EQ(a.bytes_written, 8192u);
}

}  // namespace
}  // namespace sias
