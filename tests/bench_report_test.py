#!/usr/bin/env python3
"""Unit tests for scripts/bench_report.py's baseline checker.

Regression coverage for the gate hardening: a missing results key or a
zero/absent baseline value must produce a clean FAIL line (non-zero check
count), and a malformed check (missing a field) must surface as FAIL
without aborting the remaining checks with a KeyError traceback.

Run directly (python3 tests/bench_report_test.py) or via ctest.
"""

from __future__ import annotations

import importlib.util
import io
import json
import os
import tempfile
import unittest
from contextlib import redirect_stdout
from typing import Any, cast

_SCRIPT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "scripts",
    "bench_report.py")
_spec = importlib.util.spec_from_file_location("bench_report", _SCRIPT)
assert _spec is not None and _spec.loader is not None
bench_report = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_report)

CheckResult = tuple[Any, str]


def _exp(results: dict[str, float] | None = None,
         counters: dict[str, float] | None = None,
         wa: float | None = None,
         histograms: dict[str, dict[str, float]] | None = None
         ) -> dict[str, Any]:
    exp: dict[str, Any] = {"results": results or {}}
    if counters is not None or histograms is not None:
        exp["metrics"] = {}
        if counters is not None:
            exp["metrics"]["counters"] = counters
        if histograms is not None:
            exp["metrics"]["histograms"] = histograms
    if wa is not None:
        exp["device"] = {"write_amplification": wa}
    return exp


def _hist(count: float, mean_ns: float, p999_ns: float = 0.0
          ) -> dict[str, float]:
    return {"count": count, "mean_ns": mean_ns, "p50_ns": mean_ns,
            "p90_ns": mean_ns, "p99_ns": p999_ns, "p999_ns": p999_ns,
            "max_ns": p999_ns}


BENCHES: dict[str, dict[str, dict[str, Any]]] = {
    "read_scaling": {
        "read_scaling.SIAS-V.sync": _exp(
            {"reads_per_vsec": 16000.0, "busy_fraction_mean": 0.19}),
        "read_scaling.SIAS-V.d4": _exp(
            {"reads_per_vsec": 36000.0, "busy_fraction_mean": 0.43}),
        "read_scaling.SIAS-V.zero": _exp(
            {"reads_per_vsec": 0.0, "busy_fraction_mean": 0.0}),
        "read_scaling.SIAS-V.empty": _exp({}),
    },
    "write_reduction": {
        # Phase sum 100*(400+350+200) + 0 absent gc = 95000ns vs latency
        # 100*1000 = 100000ns -> 5% drift.
        "write_reduction.SIAS-V.t2": _exp(histograms={
            "txn.latency.new_order": _hist(50, 2000.0, p999_ns=9000.0),
            "txn.latency.committed": _hist(100, 1000.0, p999_ns=8000.0),
            "txn.phase.apply": _hist(100, 400.0),
            "txn.phase.traversal": _hist(100, 350.0),
            "txn.phase.wal_flush": _hist(100, 200.0),
        }),
        "write_reduction.SIAS-V.empty": _exp(histograms={
            "txn.latency.committed": _hist(0, 0.0),
        }),
    },
}


class RatioGeqTest(unittest.TestCase):
    def check(self, check: dict[str, Any]) -> CheckResult:
        return cast(CheckResult, bench_report.run_check(check, BENCHES))

    def test_passes_on_real_ratio(self) -> None:
        ok, msg = self.check({
            "type": "ratio_geq", "bench": "read_scaling",
            "base_label": "read_scaling.SIAS-V.sync",
            "label": "read_scaling.SIAS-V.d4",
            "key": "busy_fraction_mean", "min_ratio": 1.5})
        self.assertTrue(ok, msg)

    def test_zero_baseline_fails_cleanly(self) -> None:
        # Division by a zero baseline must FAIL, not raise ZeroDivisionError.
        ok, msg = self.check({
            "type": "ratio_geq", "bench": "read_scaling",
            "base_label": "read_scaling.SIAS-V.zero",
            "label": "read_scaling.SIAS-V.d4",
            "key": "reads_per_vsec", "min_ratio": 1.0})
        self.assertFalse(ok)
        self.assertIn("zero/missing", msg)

    def test_missing_baseline_key_fails_cleanly(self) -> None:
        ok, msg = self.check({
            "type": "ratio_geq", "bench": "read_scaling",
            "base_label": "read_scaling.SIAS-V.empty",
            "label": "read_scaling.SIAS-V.d4",
            "key": "reads_per_vsec", "min_ratio": 1.0})
        self.assertFalse(ok)
        self.assertIn("zero/missing", msg)

    def test_missing_subject_key_fails_cleanly(self) -> None:
        # Baseline present but the subject label lacks the counter: the old
        # code compared None/v0 and threw TypeError.
        ok, msg = self.check({
            "type": "ratio_geq", "bench": "read_scaling",
            "base_label": "read_scaling.SIAS-V.sync",
            "label": "read_scaling.SIAS-V.empty",
            "key": "reads_per_vsec", "min_ratio": 1.0})
        self.assertFalse(ok)
        self.assertIn("missing", msg)


class RatioLeqTest(unittest.TestCase):
    """The degradation gate: label/base_label must stay under max_ratio."""

    def check(self, check: dict[str, Any]) -> CheckResult:
        return cast(CheckResult, bench_report.run_check(check, BENCHES))

    def test_passes_under_bound(self) -> None:
        # 36000/16000 = 2.25 <= 3.0.
        ok, msg = self.check({
            "type": "ratio_leq", "bench": "read_scaling",
            "base_label": "read_scaling.SIAS-V.sync",
            "label": "read_scaling.SIAS-V.d4",
            "key": "reads_per_vsec", "max_ratio": 3.0})
        self.assertTrue(ok, msg)

    def test_fails_over_bound(self) -> None:
        ok, msg = self.check({
            "type": "ratio_leq", "bench": "read_scaling",
            "base_label": "read_scaling.SIAS-V.sync",
            "label": "read_scaling.SIAS-V.d4",
            "key": "reads_per_vsec", "max_ratio": 2.0})
        self.assertFalse(ok)
        self.assertIn("ratio 2.2500", msg)
        self.assertIn("<= 2.0", msg)

    def test_zero_baseline_fails_cleanly(self) -> None:
        ok, msg = self.check({
            "type": "ratio_leq", "bench": "read_scaling",
            "base_label": "read_scaling.SIAS-V.zero",
            "label": "read_scaling.SIAS-V.d4",
            "key": "reads_per_vsec", "max_ratio": 2.0})
        self.assertFalse(ok)
        self.assertIn("zero/missing", msg)

    def test_missing_subject_key_fails_cleanly(self) -> None:
        ok, msg = self.check({
            "type": "ratio_leq", "bench": "read_scaling",
            "base_label": "read_scaling.SIAS-V.sync",
            "label": "read_scaling.SIAS-V.empty",
            "key": "reads_per_vsec", "max_ratio": 2.0})
        self.assertFalse(ok)
        self.assertIn("missing", msg)

    def test_missing_bound_field_is_malformed(self) -> None:
        # No "max_ratio": the KeyError guard in check_baseline turns this
        # into a FAIL; run_check itself raises.
        with self.assertRaises(KeyError):
            self.check({
                "type": "ratio_leq", "bench": "read_scaling",
                "base_label": "read_scaling.SIAS-V.sync",
                "label": "read_scaling.SIAS-V.d4",
                "key": "reads_per_vsec"})


class ReductionGeqTest(unittest.TestCase):
    def test_zero_baseline_fails_cleanly(self) -> None:
        ok, msg = cast(CheckResult, bench_report.run_check({
            "type": "reduction_geq", "bench": "read_scaling",
            "baseline_label": "read_scaling.SIAS-V.zero",
            "label": "read_scaling.SIAS-V.d4",
            "key": "reads_per_vsec", "min_pct": 10}, BENCHES))
        self.assertFalse(ok)
        self.assertIn("zero/missing", msg)

    def test_missing_subject_key_fails_cleanly(self) -> None:
        ok, msg = cast(CheckResult, bench_report.run_check({
            "type": "reduction_geq", "bench": "read_scaling",
            "baseline_label": "read_scaling.SIAS-V.sync",
            "label": "read_scaling.SIAS-V.empty",
            "key": "reads_per_vsec", "min_pct": 10}, BENCHES))
        self.assertFalse(ok)
        self.assertIn("missing", msg)


class PercentileLeqTest(unittest.TestCase):
    def check(self, check: dict[str, Any]) -> CheckResult:
        return cast(CheckResult, bench_report.run_check(check, BENCHES))

    def test_passes_under_bound(self) -> None:
        ok, msg = self.check({
            "type": "percentile_leq", "bench": "write_reduction",
            "label": "write_reduction.SIAS-V.t2",
            "histogram": "txn.latency.new_order",
            "quantile": "p999_ns", "max": 10000})
        self.assertTrue(ok, msg)

    def test_fails_over_bound(self) -> None:
        ok, msg = self.check({
            "type": "percentile_leq", "bench": "write_reduction",
            "label": "write_reduction.SIAS-V.t2",
            "histogram": "txn.latency.new_order",
            "quantile": "p999_ns", "max": 5000})
        self.assertFalse(ok)
        self.assertIn("p999_ns=9000", msg)

    def test_missing_histogram_fails_cleanly(self) -> None:
        ok, msg = self.check({
            "type": "percentile_leq", "bench": "write_reduction",
            "label": "write_reduction.SIAS-V.t2",
            "histogram": "txn.latency.nope",
            "quantile": "p999_ns", "max": 5000})
        self.assertFalse(ok)
        self.assertIn("missing", msg)

    def test_missing_label_fails_cleanly(self) -> None:
        ok, msg = self.check({
            "type": "percentile_leq", "bench": "write_reduction",
            "label": "write_reduction.SIAS-V.nope",
            "histogram": "txn.latency.new_order",
            "quantile": "p999_ns", "max": 5000})
        self.assertFalse(ok)
        self.assertIn("missing", msg)


class PhaseSumWithinTest(unittest.TestCase):
    PHASES = ["txn.phase.lock_wait", "txn.phase.io_wait",
              "txn.phase.wal_flush", "txn.phase.traversal",
              "txn.phase.gc_defer", "txn.phase.apply"]

    def check(self, tolerance_pct: float,
              label: str = "write_reduction.SIAS-V.t2",
              latency: str = "txn.latency.committed") -> CheckResult:
        return cast(CheckResult, bench_report.run_check({
            "type": "phase_sum_within", "bench": "write_reduction",
            "label": label, "latency": latency,
            "phases": self.PHASES, "tolerance_pct": tolerance_pct}, BENCHES))

    def test_passes_within_tolerance(self) -> None:
        # 95000ns phase sum vs 100000ns latency: 5% drift.
        ok, msg = self.check(10)
        self.assertTrue(ok, msg)

    def test_fails_outside_tolerance(self) -> None:
        ok, msg = self.check(2)
        self.assertFalse(ok)
        self.assertIn("drift 5.00%", msg)

    def test_absent_phases_count_as_zero(self) -> None:
        # Only apply/traversal/wal_flush histograms exist; absent phases
        # must contribute 0, not fail the check.
        ok, msg = self.check(6)
        self.assertTrue(ok, msg)

    def test_empty_latency_fails_cleanly(self) -> None:
        ok, msg = self.check(10, label="write_reduction.SIAS-V.empty")
        self.assertFalse(ok)
        self.assertIn("empty", msg)

    def test_missing_latency_fails_cleanly(self) -> None:
        ok, msg = self.check(10, latency="txn.latency.nope")
        self.assertFalse(ok)
        self.assertIn("missing", msg)


class MalformedCheckTest(unittest.TestCase):
    def run_baseline(self, checks: list[dict[str, Any]]) -> tuple[int, str]:
        with tempfile.NamedTemporaryFile(
                "w", suffix=".json", delete=False) as fh:
            json.dump({"checks": checks}, fh)
            path = fh.name
        try:
            out = io.StringIO()
            with redirect_stdout(out):
                failures = cast(
                    int, bench_report.check_baseline(path, BENCHES))
            return failures, out.getvalue()
        finally:
            os.unlink(path)

    def test_missing_field_is_fail_not_traceback(self) -> None:
        # No "min_ratio": must be one FAIL line, and the following valid
        # check must still run (and pass).
        failures, out = self.run_baseline([
            {"type": "ratio_geq", "bench": "read_scaling",
             "base_label": "read_scaling.SIAS-V.sync",
             "label": "read_scaling.SIAS-V.d4", "key": "reads_per_vsec",
             "desc": "broken"},
            {"type": "result_geq", "bench": "read_scaling",
             "label": "read_scaling.SIAS-V.d4", "key": "reads_per_vsec",
             "min": 1, "desc": "still runs"},
        ])
        self.assertEqual(failures, 1)
        self.assertIn("malformed check", out)
        self.assertIn("PASS  still runs", out)

    def test_missing_type_is_fail(self) -> None:
        failures, out = self.run_baseline([{"bench": "read_scaling"}])
        self.assertEqual(failures, 1)
        self.assertIn("malformed check", out)

    def test_unknown_bench_skips_unless_required(self) -> None:
        failures, out = self.run_baseline([
            {"type": "result_geq", "bench": "nope", "label": "x", "key": "k",
             "min": 1, "desc": "optional"},
            {"type": "result_geq", "bench": "nope", "label": "x", "key": "k",
             "min": 1, "required": True, "desc": "mandatory"},
        ])
        self.assertEqual(failures, 1)
        self.assertIn("SKIP  optional", out)
        self.assertIn("FAIL  mandatory", out)


if __name__ == "__main__":
    unittest.main()
