#!/usr/bin/env python3
"""Unit tests for scripts/bench_report.py's baseline checker.

Regression coverage for the gate hardening: a missing results key or a
zero/absent baseline value must produce a clean FAIL line (non-zero check
count), and a malformed check (missing a field) must surface as FAIL
without aborting the remaining checks with a KeyError traceback.

Run directly (python3 tests/bench_report_test.py) or via ctest.
"""

from __future__ import annotations

import importlib.util
import io
import json
import os
import tempfile
import unittest
from contextlib import redirect_stdout
from typing import Any, cast

_SCRIPT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "scripts",
    "bench_report.py")
_spec = importlib.util.spec_from_file_location("bench_report", _SCRIPT)
assert _spec is not None and _spec.loader is not None
bench_report = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_report)

CheckResult = tuple[Any, str]


def _exp(results: dict[str, float] | None = None,
         counters: dict[str, float] | None = None,
         wa: float | None = None) -> dict[str, Any]:
    exp: dict[str, Any] = {"results": results or {}}
    if counters is not None:
        exp["metrics"] = {"counters": counters}
    if wa is not None:
        exp["device"] = {"write_amplification": wa}
    return exp


BENCHES: dict[str, dict[str, dict[str, Any]]] = {
    "read_scaling": {
        "read_scaling.SIAS-V.sync": _exp(
            {"reads_per_vsec": 16000.0, "busy_fraction_mean": 0.19}),
        "read_scaling.SIAS-V.d4": _exp(
            {"reads_per_vsec": 36000.0, "busy_fraction_mean": 0.43}),
        "read_scaling.SIAS-V.zero": _exp(
            {"reads_per_vsec": 0.0, "busy_fraction_mean": 0.0}),
        "read_scaling.SIAS-V.empty": _exp({}),
    },
}


class RatioGeqTest(unittest.TestCase):
    def check(self, check: dict[str, Any]) -> CheckResult:
        return cast(CheckResult, bench_report.run_check(check, BENCHES))

    def test_passes_on_real_ratio(self) -> None:
        ok, msg = self.check({
            "type": "ratio_geq", "bench": "read_scaling",
            "base_label": "read_scaling.SIAS-V.sync",
            "label": "read_scaling.SIAS-V.d4",
            "key": "busy_fraction_mean", "min_ratio": 1.5})
        self.assertTrue(ok, msg)

    def test_zero_baseline_fails_cleanly(self) -> None:
        # Division by a zero baseline must FAIL, not raise ZeroDivisionError.
        ok, msg = self.check({
            "type": "ratio_geq", "bench": "read_scaling",
            "base_label": "read_scaling.SIAS-V.zero",
            "label": "read_scaling.SIAS-V.d4",
            "key": "reads_per_vsec", "min_ratio": 1.0})
        self.assertFalse(ok)
        self.assertIn("zero/missing", msg)

    def test_missing_baseline_key_fails_cleanly(self) -> None:
        ok, msg = self.check({
            "type": "ratio_geq", "bench": "read_scaling",
            "base_label": "read_scaling.SIAS-V.empty",
            "label": "read_scaling.SIAS-V.d4",
            "key": "reads_per_vsec", "min_ratio": 1.0})
        self.assertFalse(ok)
        self.assertIn("zero/missing", msg)

    def test_missing_subject_key_fails_cleanly(self) -> None:
        # Baseline present but the subject label lacks the counter: the old
        # code compared None/v0 and threw TypeError.
        ok, msg = self.check({
            "type": "ratio_geq", "bench": "read_scaling",
            "base_label": "read_scaling.SIAS-V.sync",
            "label": "read_scaling.SIAS-V.empty",
            "key": "reads_per_vsec", "min_ratio": 1.0})
        self.assertFalse(ok)
        self.assertIn("missing", msg)


class ReductionGeqTest(unittest.TestCase):
    def test_zero_baseline_fails_cleanly(self) -> None:
        ok, msg = cast(CheckResult, bench_report.run_check({
            "type": "reduction_geq", "bench": "read_scaling",
            "baseline_label": "read_scaling.SIAS-V.zero",
            "label": "read_scaling.SIAS-V.d4",
            "key": "reads_per_vsec", "min_pct": 10}, BENCHES))
        self.assertFalse(ok)
        self.assertIn("zero/missing", msg)

    def test_missing_subject_key_fails_cleanly(self) -> None:
        ok, msg = cast(CheckResult, bench_report.run_check({
            "type": "reduction_geq", "bench": "read_scaling",
            "baseline_label": "read_scaling.SIAS-V.sync",
            "label": "read_scaling.SIAS-V.empty",
            "key": "reads_per_vsec", "min_pct": 10}, BENCHES))
        self.assertFalse(ok)
        self.assertIn("missing", msg)


class MalformedCheckTest(unittest.TestCase):
    def run_baseline(self, checks: list[dict[str, Any]]) -> tuple[int, str]:
        with tempfile.NamedTemporaryFile(
                "w", suffix=".json", delete=False) as fh:
            json.dump({"checks": checks}, fh)
            path = fh.name
        try:
            out = io.StringIO()
            with redirect_stdout(out):
                failures = cast(
                    int, bench_report.check_baseline(path, BENCHES))
            return failures, out.getvalue()
        finally:
            os.unlink(path)

    def test_missing_field_is_fail_not_traceback(self) -> None:
        # No "min_ratio": must be one FAIL line, and the following valid
        # check must still run (and pass).
        failures, out = self.run_baseline([
            {"type": "ratio_geq", "bench": "read_scaling",
             "base_label": "read_scaling.SIAS-V.sync",
             "label": "read_scaling.SIAS-V.d4", "key": "reads_per_vsec",
             "desc": "broken"},
            {"type": "result_geq", "bench": "read_scaling",
             "label": "read_scaling.SIAS-V.d4", "key": "reads_per_vsec",
             "min": 1, "desc": "still runs"},
        ])
        self.assertEqual(failures, 1)
        self.assertIn("malformed check", out)
        self.assertIn("PASS  still runs", out)

    def test_missing_type_is_fail(self) -> None:
        failures, out = self.run_baseline([{"bench": "read_scaling"}])
        self.assertEqual(failures, 1)
        self.assertIn("malformed check", out)

    def test_unknown_bench_skips_unless_required(self) -> None:
        failures, out = self.run_baseline([
            {"type": "result_geq", "bench": "nope", "label": "x", "key": "k",
             "min": 1, "desc": "optional"},
            {"type": "result_geq", "bench": "nope", "label": "x", "key": "k",
             "min": 1, "required": True, "desc": "mandatory"},
        ])
        self.assertEqual(failures, 1)
        self.assertIn("SKIP  optional", out)
        self.assertIn("FAIL  mandatory", out)


if __name__ == "__main__":
    unittest.main()
