// Unit tests for the WAL: record codec, append/flush semantics, group
// commit, torn-tail detection and reader iteration.
#include <gtest/gtest.h>

#include <vector>

#include "device/mem_device.h"
#include "wal/wal.h"

namespace sias {
namespace {

WalRecord MakeInsert(Xid xid, RelationId rel, Tid tid, const std::string& body,
                     uint64_t aux = 0) {
  WalRecord r;
  r.type = WalRecordType::kHeapInsert;
  r.xid = xid;
  r.relation = rel;
  r.tid = tid;
  r.aux = aux;
  r.body = body;
  return r;
}

class WalTest : public ::testing::Test {
 protected:
  WalTest() : device_(64ull << 20), writer_(&device_, 0, 64ull << 20) {}
  MemDevice device_;
  WalWriter writer_;
  VirtualClock clk_;
};

TEST_F(WalTest, AppendFlushReadRoundTrip) {
  auto lsn1 = writer_.Append(MakeInsert(10, 1, Tid{5, 2}, "tuple-a", 42));
  auto lsn2 = writer_.Append(MakeInsert(11, 2, Tid{6, 3}, "tuple-bb", 43));
  ASSERT_TRUE(lsn1.ok());
  ASSERT_TRUE(lsn2.ok());
  EXPECT_GT(*lsn2, *lsn1);
  ASSERT_TRUE(writer_.FlushTo(*lsn2, &clk_).ok());
  EXPECT_EQ(writer_.flushed_lsn(), *lsn2);

  WalReader reader(&device_, 0, 64ull << 20);
  auto r1 = reader.Next();
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r1->has_value());
  EXPECT_EQ((*r1)->xid, 10u);
  EXPECT_EQ((*r1)->relation, 1u);
  EXPECT_EQ((*r1)->tid, (Tid{5, 2}));
  EXPECT_EQ((*r1)->aux, 42u);
  EXPECT_EQ((*r1)->body, "tuple-a");
  auto r2 = reader.Next();
  ASSERT_TRUE(r2.ok() && r2->has_value());
  EXPECT_EQ((*r2)->body, "tuple-bb");
  auto r3 = reader.Next();
  ASSERT_TRUE(r3.ok());
  EXPECT_FALSE(r3->has_value());  // end of log
  EXPECT_EQ(reader.lsn(), *lsn2);
}

TEST_F(WalTest, UnflushedRecordsInvisibleToReader) {
  auto lsn1 = writer_.Append(MakeInsert(1, 1, Tid{0, 0}, "flushed"));
  ASSERT_TRUE(writer_.FlushTo(*lsn1, &clk_).ok());
  ASSERT_TRUE(writer_.Append(MakeInsert(2, 1, Tid{0, 1}, "buffered")).ok());

  WalReader reader(&device_, 0, 64ull << 20);
  auto r1 = reader.Next();
  ASSERT_TRUE(r1.ok() && r1->has_value());
  EXPECT_EQ((*r1)->body, "flushed");
  auto r2 = reader.Next();
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2->has_value());
}

TEST_F(WalTest, GroupCommitFlushesEverythingBelow) {
  std::vector<Lsn> lsns;
  for (int i = 0; i < 10; ++i) {
    auto l = writer_.Append(MakeInsert(i + 2, 1, Tid{0, 0}, "r"));
    ASSERT_TRUE(l.ok());
    lsns.push_back(*l);
  }
  // One flush to the last LSN covers all ten records.
  ASSERT_TRUE(writer_.FlushTo(lsns.back(), &clk_).ok());
  WalReader reader(&device_, 0, 64ull << 20);
  int count = 0;
  for (;;) {
    auto r = reader.Next();
    ASSERT_TRUE(r.ok());
    if (!r->has_value()) break;
    count++;
  }
  EXPECT_EQ(count, 10);
}

TEST_F(WalTest, FlushToIsMonotoneAndIdempotent) {
  auto l1 = writer_.Append(MakeInsert(2, 1, Tid{0, 0}, "x"));
  ASSERT_TRUE(writer_.FlushTo(*l1, &clk_).ok());
  uint64_t w = writer_.written_bytes();
  ASSERT_TRUE(writer_.FlushTo(*l1, &clk_).ok());  // no-op
  ASSERT_TRUE(writer_.FlushTo(5, &clk_).ok());    // below: no-op
  EXPECT_EQ(writer_.written_bytes(), w);
}

TEST_F(WalTest, LargeBodiesSpanBlocks) {
  std::string big(3 * kPageSize, 'z');
  auto l = writer_.Append(MakeInsert(2, 1, Tid{0, 0}, big));
  ASSERT_TRUE(l.ok());
  ASSERT_TRUE(writer_.FlushTo(*l, &clk_).ok());
  WalReader reader(&device_, 0, 64ull << 20);
  auto r = reader.Next();
  ASSERT_TRUE(r.ok() && r->has_value());
  EXPECT_EQ((*r)->body, big);
}

TEST_F(WalTest, TornTailStopsReader) {
  auto l1 = writer_.Append(MakeInsert(2, 1, Tid{0, 0}, "good"));
  auto l2 = writer_.Append(MakeInsert(3, 1, Tid{0, 1}, "will-be-torn"));
  ASSERT_TRUE(writer_.FlushTo(*l2, &clk_).ok());
  // Corrupt a byte inside the second record on the device.
  uint64_t torn_offset = *l1 + 12;
  std::vector<uint8_t> blk(kPageSize);
  ASSERT_TRUE(device_.Read(0, kPageSize, blk.data(), nullptr).ok());
  blk[static_cast<size_t>(torn_offset)] ^= 0xff;
  ASSERT_TRUE(device_.Write(0, kPageSize, blk.data(), nullptr).ok());

  WalReader reader(&device_, 0, 64ull << 20);
  auto r1 = reader.Next();
  ASSERT_TRUE(r1.ok() && r1->has_value());
  EXPECT_EQ((*r1)->body, "good");
  auto r2 = reader.Next();
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2->has_value());  // CRC mismatch ends the log
  EXPECT_EQ(reader.lsn(), *l1);
}

TEST_F(WalTest, MidLogCorruptionIsLoud) {
  // Damage *before* the last synced record must not read as a torn tail:
  // silently truncating there would lose durable commits. Regression test
  // for the reader classifying every CRC failure as end-of-log.
  auto l1 = writer_.Append(MakeInsert(2, 1, Tid{0, 0}, "first"));
  auto l2 = writer_.Append(MakeInsert(3, 1, Tid{0, 1}, "second"));
  auto l3 = writer_.Append(MakeInsert(4, 1, Tid{0, 2}, "third"));
  ASSERT_TRUE(writer_.FlushTo(*l3, &clk_).ok());
  // Corrupt a byte inside the FIRST record; two intact records follow.
  std::vector<uint8_t> blk(kPageSize);
  ASSERT_TRUE(device_.Read(0, kPageSize, blk.data(), nullptr).ok());
  blk[12] ^= 0xff;
  ASSERT_TRUE(device_.Write(0, kPageSize, blk.data(), nullptr).ok());
  (void)l1;
  (void)l2;

  WalReader reader(&device_, 0, 64ull << 20);
  auto r = reader.Next();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption)
      << r.status().ToString();
}

TEST_F(WalTest, ResumeZeroesStaleTailForCorruptionDetection) {
  // A shorter recovered log must not leave the previous generation's
  // records beyond its end — they would later read as "intact records past
  // the damage" and turn every benign torn tail into a false corruption
  // report. Resume() zeroes them.
  std::string big(3000, 'z');
  std::vector<Lsn> ends;
  for (int i = 0; i < 10; ++i) {
    auto l = writer_.Append(MakeInsert(2 + i, 1, Tid{0, 0}, big));
    ASSERT_TRUE(l.ok());
    ends.push_back(*l);
  }
  ASSERT_TRUE(writer_.FlushTo(ends.back(), &clk_).ok());

  // Pretend recovery only found the first four records valid.
  WalWriter resumed(&device_, 0, 64ull << 20);
  ASSERT_TRUE(resumed.Resume(ends[3]).ok());

  // The reader now sees records 1-4, then a benign end of log — record 5's
  // head may survive in the resume block, but nothing valid follows it.
  WalReader reader(&device_, 0, 64ull << 20);
  int n = 0;
  for (;;) {
    auto r = reader.Next();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    if (!r->has_value()) break;
    n++;
  }
  EXPECT_EQ(n, 4);
}

TEST_F(WalTest, RegionFullReported) {
  WalWriter tiny(&device_, 0, 256);
  auto l1 = tiny.Append(MakeInsert(2, 1, Tid{0, 0}, std::string(100, 'a')));
  EXPECT_TRUE(l1.ok());
  auto l2 = tiny.Append(MakeInsert(3, 1, Tid{0, 0}, std::string(200, 'b')));
  EXPECT_FALSE(l2.ok());
  EXPECT_EQ(l2.status().code(), StatusCode::kOutOfSpace);
}

TEST_F(WalTest, PartialBlockRewriteAmplifiesPhysicalWrites) {
  // Two tiny flushes rewrite the same 8 KB block twice.
  auto l1 = writer_.Append(MakeInsert(2, 1, Tid{0, 0}, "a"));
  ASSERT_TRUE(writer_.FlushTo(*l1, &clk_).ok());
  auto l2 = writer_.Append(MakeInsert(3, 1, Tid{0, 0}, "b"));
  ASSERT_TRUE(writer_.FlushTo(*l2, &clk_).ok());
  EXPECT_EQ(writer_.written_bytes(), 2 * kPageSize);
  EXPECT_LT(writer_.appended_bytes(), kPageSize);
}

TEST_F(WalTest, ReaderStartsMidLog) {
  auto l1 = writer_.Append(MakeInsert(2, 1, Tid{0, 0}, "first"));
  auto l2 = writer_.Append(MakeInsert(3, 1, Tid{0, 0}, "second"));
  ASSERT_TRUE(writer_.FlushTo(*l2, &clk_).ok());
  WalReader reader(&device_, 0, 64ull << 20, /*start_lsn=*/*l1);
  auto r = reader.Next();
  ASSERT_TRUE(r.ok() && r->has_value());
  EXPECT_EQ((*r)->body, "second");
}

}  // namespace
}  // namespace sias
