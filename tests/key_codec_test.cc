// Order-preservation tests for the composite-key codec: encoded byte
// strings must memcmp-order exactly as the field tuples order, across
// signed integer boundaries and strings with embedded zero bytes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "index/key_codec.h"

namespace sias {
namespace {

TEST(KeyCodecTest, IntOrderAcrossSignedBoundaries) {
  const std::vector<int64_t> values = {
      std::numeric_limits<int64_t>::min(),
      std::numeric_limits<int64_t>::min() + 1,
      -(1ll << 32) - 1,
      -(1ll << 32),
      -2,
      -1,
      0,
      1,
      2,
      (1ll << 32) - 1,
      (1ll << 32),
      std::numeric_limits<int64_t>::max() - 1,
      std::numeric_limits<int64_t>::max(),
  };
  for (size_t i = 0; i + 1 < values.size(); ++i) {
    EXPECT_LT(IntKey(values[i]), IntKey(values[i + 1]))
        << values[i] << " vs " << values[i + 1];
  }
}

TEST(KeyCodecTest, StringOrderWithEmbeddedZeroBytes) {
  // Tuple order of the raw strings (shorter-prefix-first, byte-wise),
  // including empties and embedded/leading/trailing NULs.
  const std::vector<std::string> values = {
      std::string(),
      std::string("\0", 1),
      std::string("\0\0", 2),
      std::string("\0a", 2),
      std::string("a"),
      std::string("a\0", 2),
      std::string("a\0\0", 3),
      std::string("a\0b", 3),
      std::string("a\x01", 2),
      std::string("ab"),
      std::string("b"),
  };
  ASSERT_TRUE(std::is_sorted(values.begin(), values.end()));
  for (size_t i = 0; i + 1 < values.size(); ++i) {
    std::string a = KeyBuilder().AddString(values[i]).Take();
    std::string b = KeyBuilder().AddString(values[i + 1]).Take();
    EXPECT_LT(a, b) << "field " << i << " vs " << i + 1;
  }
}

TEST(KeyCodecTest, PrefixOrdersBeforeExtension) {
  // The terminator must sort below ANY continuation of the field —
  // including a continuation that is itself an (escaped) zero byte.
  EXPECT_LT(KeyBuilder().AddString("a").Take(),
            KeyBuilder().AddString(std::string("a\0", 2)).Take());
  EXPECT_LT(KeyBuilder().AddString("a").Take(),
            KeyBuilder().AddString("ab").Take());
}

TEST(KeyCodecTest, CompositeFieldsCannotCollide) {
  // The historical bug: a bare 0x00 terminator made ("a", "\0c") and
  // ("a\0", "c") encode to the same bytes. With escaped NULs the encodings
  // are distinct and ordered like the tuples: ("a", _) < ("a\0", _).
  std::string t1 = KeyBuilder()
                       .AddString("a")
                       .AddString(std::string("\0c", 2))
                       .Take();
  std::string t2 = KeyBuilder()
                       .AddString(std::string("a\0", 2))
                       .AddString("c")
                       .Take();
  EXPECT_NE(t1, t2);
  EXPECT_LT(t1, t2);
}

TEST(KeyCodecTest, CompositeIntStringOrder) {
  struct Tuple {
    int64_t a;
    std::string b;
    int64_t c;
  };
  // Tuple order with the middle string varying in length and content.
  const std::vector<Tuple> tuples = {
      {-5, "x", 9},  {-5, "x", 10}, {-5, std::string("x\0", 2), 0},
      {-5, "xa", 0}, {0, "", 0},    {0, "", 1},
      {0, "a", -7},  {3, "", 0},
  };
  for (size_t i = 0; i + 1 < tuples.size(); ++i) {
    std::string a = KeyBuilder()
                        .AddInt(tuples[i].a)
                        .AddString(tuples[i].b)
                        .AddInt(tuples[i].c)
                        .Take();
    std::string b = KeyBuilder()
                        .AddInt(tuples[i + 1].a)
                        .AddString(tuples[i + 1].b)
                        .AddInt(tuples[i + 1].c)
                        .Take();
    EXPECT_LT(a, b) << "tuple " << i << " vs " << i + 1;
  }
}

}  // namespace
}  // namespace sias
