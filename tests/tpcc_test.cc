// TPC-C workload tests: loader cardinalities, transaction profiles, the
// driver, and TPC-C consistency conditions (spec §3.3.2) after a run —
// executed under all three version schemes.
#include <gtest/gtest.h>

#include <memory>

#include "device/mem_device.h"
#include "workload/tpcc_driver.h"
#include "workload/tpcc_gen.h"

namespace sias {
namespace tpcc {
namespace {

TEST(TpccGenTest, LastNameSyllables) {
  EXPECT_EQ(LastName(0), "BARBARBAR");
  EXPECT_EQ(LastName(371), "PRICALLYOUGHT");
  EXPECT_EQ(LastName(999), "EINGEINGEING");
}

class TpccTest : public ::testing::TestWithParam<VersionScheme> {
 protected:
  static constexpr int kWarehouses = 2;

  void SetUp() override {
    data_ = std::make_unique<MemDevice>(2ull << 30);
    wal_ = std::make_unique<MemDevice>(2ull << 30);
    DatabaseOptions opts;
    opts.data_device = data_.get();
    opts.wal_device = wal_.get();
    opts.pool_frames = 2048;
    opts.lock_timeout_ms = 200;
    auto db = Database::Open(opts);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);

    auto tables = CreateTpccTables(db_.get(), GetParam());
    ASSERT_TRUE(tables.ok()) << tables.status().ToString();
    tables_ = *tables;

    scale_.customers_per_district = 12;
    scale_.items = 100;
    scale_.orders_per_district = 12;

    Random rng(7);
    VirtualClock clk;
    ASSERT_TRUE(
        LoadTpcc(db_.get(), tables_, scale_, kWarehouses, rng, &clk).ok());
  }

  int64_t CountRows(Table* table) {
    VirtualClock clk;
    auto txn = db_->Begin(&clk);
    int64_t n = 0;
    EXPECT_TRUE(table->Scan(txn.get(), [&](Vid, const Row&) {
      n++;
      return true;
    }).ok());
    EXPECT_TRUE(db_->Commit(txn.get()).ok());
    return n;
  }

  /// TPC-C consistency condition 1: d_next_o_id - 1 equals the max o_id in
  /// ORDERS and NEW_ORDER for every district.
  void CheckConsistency() {
    VirtualClock clk;
    auto txn = db_->Begin(&clk);
    for (int64_t w = 1; w <= kWarehouses; ++w) {
      for (int64_t d = 1; d <= scale_.districts_per_wh; ++d) {
        auto dist = tables_.district->IndexLookup(
            txn.get(), TpccTables::kDistrictPk, Slice(DistrictKey(w, d)));
        ASSERT_TRUE(dist.ok());
        ASSERT_EQ(dist->size(), 1u);
        int64_t next_o = (*dist)[0].second.GetInt(dcol::kNextOid);

        int64_t max_o = 0;
        ASSERT_TRUE(tables_.orders
                        ->IndexRange(txn.get(), TpccTables::kOrdersPk,
                                     Slice(OrderKey(w, d, 0)),
                                     Slice(OrderKey(w, d + 1, 0)),
                                     [&](Vid, const Row& row) {
                                       max_o = std::max(max_o,
                                                        row.GetInt(ocol::kId));
                                       return true;
                                     })
                        .ok());
        EXPECT_EQ(next_o, max_o + 1) << "w=" << w << " d=" << d;

        // Condition 3-ish: every NEW_ORDER has a matching ORDERS row.
        ASSERT_TRUE(tables_.new_order
                        ->IndexRange(txn.get(), TpccTables::kNewOrderPk,
                                     Slice(NewOrderKey(w, d, 0)),
                                     Slice(NewOrderKey(w, d + 1, 0)),
                                     [&](Vid, const Row& row) {
                                       int64_t o = row.GetInt(nocol::kOid);
                                       auto ord = tables_.orders->IndexLookup(
                                           txn.get(), TpccTables::kOrdersPk,
                                           Slice(OrderKey(w, d, o)));
                                       EXPECT_TRUE(ord.ok() &&
                                                   ord->size() == 1);
                                       return true;
                                     })
                        .ok());
      }
    }
    ASSERT_TRUE(db_->Commit(txn.get()).ok());
  }

  std::unique_ptr<MemDevice> data_, wal_;
  std::unique_ptr<Database> db_;
  TpccTables tables_;
  TpccScale scale_;
};

TEST_P(TpccTest, LoaderCardinalities) {
  EXPECT_EQ(CountRows(tables_.warehouse), kWarehouses);
  EXPECT_EQ(CountRows(tables_.district),
            kWarehouses * scale_.districts_per_wh);
  EXPECT_EQ(CountRows(tables_.customer),
            kWarehouses * scale_.districts_per_wh *
                scale_.customers_per_district);
  EXPECT_EQ(CountRows(tables_.item), scale_.items);
  EXPECT_EQ(CountRows(tables_.stock), kWarehouses * scale_.items);
  EXPECT_EQ(CountRows(tables_.orders),
            kWarehouses * scale_.districts_per_wh *
                scale_.orders_per_district);
  // A third of initial orders are undelivered.
  EXPECT_EQ(CountRows(tables_.new_order),
            kWarehouses * scale_.districts_per_wh *
                (scale_.orders_per_district -
                 scale_.orders_per_district * 2 / 3));
  CheckConsistency();
}

TEST_P(TpccTest, EachProfileRunsCleanly) {
  TpccConfig cfg;
  cfg.warehouses = kWarehouses;
  cfg.scale = scale_;
  TpccExecutor exec(db_.get(), tables_, cfg);
  Random rng(11);
  VirtualClock clk;
  for (TxnType type :
       {TxnType::kNewOrder, TxnType::kPayment, TxnType::kOrderStatus,
        TxnType::kDelivery, TxnType::kStockLevel}) {
    for (int i = 0; i < 10; ++i) {
      Status error;
      TxnOutcome out = exec.Run(type, 1 + (i % kWarehouses), rng, &clk,
                                &error);
      EXPECT_NE(out, TxnOutcome::kError)
          << ToString(type) << ": " << error.ToString();
    }
  }
  CheckConsistency();
}

TEST_P(TpccTest, NewOrderAdvancesDistrictAndWritesLines) {
  TpccConfig cfg;
  cfg.warehouses = kWarehouses;
  cfg.scale = scale_;
  TpccExecutor exec(db_.get(), tables_, cfg);
  Random rng(13);
  VirtualClock clk;

  int committed = 0;
  for (int i = 0; i < 30; ++i) {
    if (exec.Run(TxnType::kNewOrder, 1, rng, &clk) ==
        TxnOutcome::kCommitted) {
      committed++;
    }
  }
  EXPECT_GT(committed, 20);  // only ~1% user aborts expected

  // Orders grew by `committed`.
  EXPECT_EQ(CountRows(tables_.orders),
            kWarehouses * scale_.districts_per_wh *
                    scale_.orders_per_district + committed);
  CheckConsistency();
}

TEST_P(TpccTest, DriverProducesThroughput) {
  TpccConfig cfg;
  cfg.warehouses = kWarehouses;
  cfg.scale = scale_;
  TpccExecutor exec(db_.get(), tables_, cfg);

  DriverConfig dcfg;
  dcfg.terminals = 4;
  dcfg.threads = 2;
  dcfg.duration = kVSecond / 2;
  TpccDriver driver(db_.get(), &exec, dcfg);
  auto result = driver.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->errors, 0u) << result->first_error.ToString();
  EXPECT_GT(result->TotalCommitted(), 0u);
  EXPECT_GT(result->Notpm(), 0.0);
  EXPECT_GE(result->makespan, dcfg.duration);
  CheckConsistency();
}

TEST_P(TpccTest, DriverWithVacuumAndCheckpointStaysConsistent) {
  TpccConfig cfg;
  cfg.warehouses = kWarehouses;
  cfg.scale = scale_;
  TpccExecutor exec(db_.get(), tables_, cfg);

  DriverConfig dcfg;
  dcfg.terminals = 2;
  dcfg.threads = 2;
  dcfg.duration = kVSecond / 2;
  TpccDriver driver(db_.get(), &exec, dcfg);
  auto r1 = driver.Run();
  ASSERT_TRUE(r1.ok());
  VirtualClock clk;
  ASSERT_TRUE(db_->Checkpoint(&clk).ok());
  GcStats gc;
  ASSERT_TRUE(db_->Vacuum(&clk, &gc).ok());
  auto r2 = driver.Run();
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->errors, 0u) << r2->first_error.ToString();
  CheckConsistency();
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, TpccTest,
                         ::testing::Values(VersionScheme::kSi,
                                           VersionScheme::kSiasChains,
                                           VersionScheme::kSiasV),
                         [](const auto& info) {
                           std::string n = sias::ToString(info.param);
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace tpcc
}  // namespace sias
