// Crash-consistency suite built on fault::CrashRunner (docs/FAULTS.md):
//  * a crash matrix sweeping every registered crash point the workload
//    reaches, across all three version schemes and both flush policies —
//    each cut must recover with the invariant suite green;
//  * a sabotage check proving the invariants CATCH a recovery that loses a
//    redo record (RecoverOptions::skip_redo_record);
//  * seeded randomized device-op power cuts (the fuzz loop behind
//    scripts/crashgrind.sh) — failures print their seed for replay;
//  * transient-I/O robustness: bursts within the retry budget are invisible
//    to callers, exhausted budgets surface as clean Status errors;
//  * Recover() idempotence (double recovery, paced checkpoint mid-flight)
//    and the db.recovery.* gauges.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include <cstring>

#include "device/flash_ssd.h"
#include "device/mem_device.h"
#include "fault/crash_runner.h"
#include "fault/faulty_device.h"
#include "common/vclock.h"
#include "fault/retry.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace sias {
namespace fault {
namespace {

std::string SchemeTag(VersionScheme s) {
  std::string n = ToString(s);
  for (auto& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

// ---------------------------------------------------------------------------
// Crash matrix: every reachable crash point x scheme x flush policy.
// ---------------------------------------------------------------------------

class CrashMatrixTest
    : public ::testing::TestWithParam<std::tuple<VersionScheme, FlushPolicy>> {
};

TEST_P(CrashMatrixTest, EveryCrashPointRecovers) {
  auto [scheme, policy] = GetParam();
  CrashConfig base;
  base.scheme = scheme;
  base.flush_policy = policy;
  base.seed = 0xC0FFEE;

  auto points = DiscoverCrashPoints(base);
  ASSERT_TRUE(points.ok()) << points.status().ToString();
  ASSERT_GE(points->size(), 12u)
      << "the workload must reach at least 12 distinct crash points";

  for (const std::string& point : *points) {
    SCOPED_TRACE("crash point: " + point);
    CrashConfig cfg = base;
    cfg.crash_point = point;
    // Cut at a later hit for the hot points so real state has accumulated.
    cfg.nth = (point.rfind("wal.", 0) == 0 || point.rfind("txn.", 0) == 0 ||
               point.rfind("region.", 0) == 0)
                  ? 17
                  : 1;
    CrashRunner runner(cfg);
    Status s = runner.RunWorkload();
    ASSERT_TRUE(s.ok()) << s.ToString();
    if (!runner.report().crashed) continue;  // nth beyond the hit count
    s = runner.ReopenAndRecover();
    ASSERT_TRUE(s.ok()) << s.ToString();
    s = runner.CheckInvariants();
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndPolicies, CrashMatrixTest,
    ::testing::Combine(::testing::Values(VersionScheme::kSi,
                                         VersionScheme::kSiasChains,
                                         VersionScheme::kSiasV),
                       ::testing::Values(FlushPolicy::kT2Checkpoint,
                                         FlushPolicy::kT1BackgroundWriter)),
    [](const auto& info) {
      return SchemeTag(std::get<0>(info.param)) +
             (std::get<1>(info.param) == FlushPolicy::kT2Checkpoint ? "_t2"
                                                                    : "_t1");
    });

TEST(CrashMatrix, MvPbtPartitionFlushCuts) {
  // With the MV-PBT index the Vacuum pass flushes the index buffer into an
  // on-device partition; cutting power at each mvpbt.flush.* point (plus a
  // torn variant of the page write) must recover with the suite green —
  // the index is rebuilt from the heap and the half-written partition pages
  // are simply never referenced again.
  for (VersionScheme scheme :
       {VersionScheme::kSi, VersionScheme::kSiasChains, VersionScheme::kSiasV}) {
    CrashConfig base;
    base.scheme = scheme;
    base.seed = 0xC0FFEE;
    base.index_kind = IndexKind::kMvPbt;

    auto points = DiscoverCrashPoints(base);
    ASSERT_TRUE(points.ok()) << points.status().ToString();
    std::vector<std::string> mvpbt_points;
    for (const std::string& p : *points) {
      if (p.rfind("mvpbt.", 0) == 0) mvpbt_points.push_back(p);
    }
    ASSERT_GE(mvpbt_points.size(), 2u)
        << "the Vacuum pass must reach the partition-flush crash points";

    for (const std::string& point : mvpbt_points) {
      for (bool tear : {false, true}) {
        SCOPED_TRACE(SchemeTag(scheme) + " crash point: " + point +
                     (tear ? " (torn)" : ""));
        CrashConfig cfg = base;
        cfg.crash_point = point;
        cfg.tear = tear;
        CrashRunner runner(cfg);
        Status s = runner.RunWorkload();
        ASSERT_TRUE(s.ok()) << s.ToString();
        ASSERT_TRUE(runner.report().crashed);
        s = runner.ReopenAndRecover();
        ASSERT_TRUE(s.ok()) << s.ToString();
        s = runner.CheckInvariants();
        EXPECT_TRUE(s.ok()) << s.ToString();
      }
    }
  }
}

TEST(CrashMatrix, TornPowerCutsRecoverToo) {
  // Sector-level tearing of the first dropped cached write: the WAL's CRC
  // framing must classify the torn block as a benign tail.
  for (VersionScheme scheme :
       {VersionScheme::kSi, VersionScheme::kSiasChains, VersionScheme::kSiasV}) {
    SCOPED_TRACE(SchemeTag(scheme));
    CrashConfig cfg;
    cfg.scheme = scheme;
    cfg.seed = 0xBADCAB;
    cfg.crash_point = "wal.pre_fsync";
    cfg.nth = 9;
    cfg.tear = true;
    CrashRunner runner(cfg);
    ASSERT_TRUE(runner.RunWorkload().ok());
    ASSERT_TRUE(runner.report().crashed);
    ASSERT_TRUE(runner.ReopenAndRecover().ok());
    Status s = runner.CheckInvariants();
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
}

TEST(CrashMatrix, PowerCutWithInFlightAsyncSubmissions) {
  // Cut power at a WAL write *completion*: with the pipelined group commit,
  // a multi-block flush burst submits every block before waiting any, so at
  // the kth completion the rest of the burst is still queued on the async
  // submission queue — lost entirely, never reaching the volatile cache.
  // The durable log can therefore end mid-burst; recovery must treat that
  // exactly like a torn tail. Sweep a few cut positions per scheme so the
  // cut lands at different offsets within commit bursts.
  for (VersionScheme scheme :
       {VersionScheme::kSi, VersionScheme::kSiasChains, VersionScheme::kSiasV}) {
    for (uint64_t nth : {3ull, 29ull, 61ull}) {
      SCOPED_TRACE(SchemeTag(scheme) + " wal write #" + std::to_string(nth));
      CrashConfig cfg;
      cfg.scheme = scheme;
      cfg.seed = 0xA51AC * nth;
      FaultRule cut;
      cut.kind = FaultKind::kPowerCut;
      cut.op = OpClass::kWrite;
      cut.device_tag = "wal";
      cut.nth = nth;
      cfg.extra_rules.push_back(cut);
      CrashRunner runner(cfg);
      ASSERT_TRUE(runner.RunWorkload().ok());
      if (!runner.report().crashed) continue;  // nth beyond the write count
      Status s = runner.ReopenAndRecover();
      ASSERT_TRUE(s.ok()) << s.ToString();
      s = runner.CheckInvariants();
      EXPECT_TRUE(s.ok()) << s.ToString();
    }
  }
}

// ---------------------------------------------------------------------------
// The invariants must have teeth: a recovery that silently skips one heap
// redo record has to FAIL the suite.
// ---------------------------------------------------------------------------

TEST(CrashSabotage, SkippedRedoRecordIsCaught) {
  CrashConfig cfg;
  cfg.scheme = VersionScheme::kSiasChains;
  cfg.seed = 0x5AB07A6E;
  // Cut before the first checkpoint: every heap record must come back
  // through WAL redo, so skipping one is guaranteed to lose state.
  cfg.crash_point = "txn.commit.pre_flush";
  cfg.nth = 20;
  CrashRunner runner(cfg);
  ASSERT_TRUE(runner.RunWorkload().ok());
  ASSERT_TRUE(runner.report().crashed);
  ASSERT_GT(runner.report().committed, 5);

  RecoverOptions sabotage;
  sabotage.skip_redo_record = 0;
  Status rec = runner.ReopenAndRecover(sabotage);
  if (rec.ok()) {
    Status inv = runner.CheckInvariants();
    EXPECT_FALSE(inv.ok())
        << "a recovery that lost a redo record passed the invariant suite";
  }
  // (A loud Recover() failure would be an equally valid catch.)
}

// ---------------------------------------------------------------------------
// Seeded randomized power-cut fuzz (mirrored by scripts/crashgrind.sh).
// ---------------------------------------------------------------------------

// Seeds that once exposed real recovery bugs, pinned forever: un-logged GC
// page reclaim/recycle shadowing redo (needs the WAL-LSN stamp on re-Init),
// ChainOf walking a dangling anchor predecessor into a recycled page, and
// torn in-place page writes (need the full-page-image prepass).
TEST(CrashFuzz, RegressionSeeds) {
  for (uint64_t seed : {20332078ull, 21332081ull, 26332096ull, 39260864ull,
                        41260870ull, 46300480ull}) {
    SCOPED_TRACE("replay with SIAS_CRASH_SEED=" + std::to_string(seed) +
                 " SIAS_CRASH_ITERS=1");
    CrashConfig cfg;
    cfg.scheme = static_cast<VersionScheme>(seed % 3);
    cfg.flush_policy = (seed / 3) % 2 == 0 ? FlushPolicy::kT2Checkpoint
                                           : FlushPolicy::kT1BackgroundWriter;
    cfg.seed = seed;
    FaultRule cut;
    cut.kind = FaultKind::kPowerCut;
    cut.op = OpClass::kWrite;
    cut.nth = 1 + seed % 400;
    cut.tear = seed % 5 == 0;
    cfg.extra_rules.push_back(cut);
    CrashRunner runner(cfg);
    ASSERT_TRUE(runner.RunWorkload().ok());
    if (!runner.report().crashed) continue;
    Status s = runner.ReopenAndRecover();
    ASSERT_TRUE(s.ok()) << s.ToString();
    s = runner.CheckInvariants();
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
}

TEST(CrashFuzz, RandomDeviceOpPowerCuts) {
  uint64_t base_seed = 20260807;
  if (const char* env = std::getenv("SIAS_CRASH_SEED")) {
    base_seed = std::strtoull(env, nullptr, 10);
  }
  int iters = 10;
  if (const char* env = std::getenv("SIAS_CRASH_ITERS")) {
    iters = std::atoi(env);
  }
  for (int i = 0; i < iters; ++i) {
    uint64_t seed = base_seed + 7919ull * i;
    SCOPED_TRACE("replay with SIAS_CRASH_SEED=" + std::to_string(seed) +
                 " SIAS_CRASH_ITERS=1");
    CrashConfig cfg;
    cfg.scheme = static_cast<VersionScheme>(seed % 3);
    cfg.flush_policy = (seed / 3) % 2 == 0 ? FlushPolicy::kT2Checkpoint
                                           : FlushPolicy::kT1BackgroundWriter;
    cfg.seed = seed;
    FaultRule cut;
    cut.kind = FaultKind::kPowerCut;
    cut.op = OpClass::kWrite;
    cut.nth = 1 + seed % 400;
    cut.tear = seed % 5 == 0;
    cfg.extra_rules.push_back(cut);
    CrashRunner runner(cfg);
    ASSERT_TRUE(runner.RunWorkload().ok());
    if (!runner.report().crashed) continue;  // nth beyond the op count
    Status s = runner.ReopenAndRecover();
    ASSERT_TRUE(s.ok()) << s.ToString();
    s = runner.CheckInvariants();
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
}

// ---------------------------------------------------------------------------
// Transient I/O errors: bounded retries absorb bursts; exhausted budgets
// surface as clean errors (never crashes, never silent corruption).
// ---------------------------------------------------------------------------

TEST(TransientFaults, BurstWithinRetryBudgetIsInvisible) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  int64_t recovered_before = reg.GetCounter("fault.retry.recovered")->Value();

  CrashConfig cfg;
  cfg.scheme = VersionScheme::kSiasV;
  cfg.seed = 0x7EA;
  FaultRule burst;
  burst.kind = FaultKind::kTransientIoError;
  burst.op = OpClass::kWrite;
  burst.device_tag = "wal";
  burst.nth = 5;
  burst.repeat = 3;  // three consecutive failures < kRetryAttempts
  cfg.extra_rules.push_back(burst);

  CrashRunner runner(cfg);
  Status s = runner.RunWorkload();
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_FALSE(runner.report().crashed);
  EXPECT_GT(runner.report().committed, 0);
  EXPECT_GT(reg.GetCounter("fault.retry.recovered")->Value(), recovered_before)
      << "the burst should have been absorbed by the retry loop";
}

TEST(TransientFaults, ExhaustedRetryBudgetIsACleanError) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  int64_t exhausted_before = reg.GetCounter("fault.retry.exhausted")->Value();

  CrashConfig cfg;
  cfg.scheme = VersionScheme::kSiasV;
  cfg.seed = 0x7EB;
  FaultRule storm;
  storm.kind = FaultKind::kTransientIoError;
  storm.op = OpClass::kWrite;
  storm.device_tag = "wal";
  storm.nth = 5;
  storm.repeat = -1;  // every WAL write from the 5th on fails
  cfg.extra_rules.push_back(storm);

  CrashRunner runner(cfg);
  Status s = runner.RunWorkload();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError) << s.ToString();
  EXPECT_NE(s.message().find("retry budget"), std::string::npos)
      << s.ToString();
  EXPECT_GT(reg.GetCounter("fault.retry.exhausted")->Value(),
            exhausted_before);
}

// ---------------------------------------------------------------------------
// Deferred asynchronous I/O through the fault decorator: with an armed
// injector, Submit only queues; faults fire at *completion* time, a power
// cut loses still-queued requests, and Cancel means the op never ran.
// (Unarmed submissions take the eager fast path and behave like the base
// device — also pinned below.)
// ---------------------------------------------------------------------------

namespace {
FaultRule NeverMatches() {
  // Keeps the injector armed (forcing the deferred queue) without ever
  // firing on the devices under test.
  FaultRule r;
  r.kind = FaultKind::kTransientIoError;
  r.device_tag = "no-such-device";
  return r;
}

IoRequest WriteReq(uint64_t offset, const std::vector<uint8_t>& data) {
  IoRequest req;
  req.op = IoOp::kWrite;
  req.offset = offset;
  req.len = data.size();
  req.data = data.data();
  return req;
}
}  // namespace

TEST(AsyncFaultDevice, ArmedSubmitDefersUntilWait) {
  MemDevice inner(1 << 20);
  FaultInjector inj(1);
  inj.AddRule(NeverMatches());
  inj.Arm();
  FaultyDevice::Options opts;
  opts.tag = "data";
  FaultyDevice dev(&inner, &inj, opts);

  std::vector<uint8_t> data(kPageSize, 0xAB);
  auto h = dev.Submit(WriteReq(0, data), 0);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(inner.stats().write_ops, 0u)
      << "an armed injector must defer execution to completion time";
  VirtualClock clk;
  ASSERT_TRUE(dev.Wait(*h, &clk).ok());
  EXPECT_EQ(inner.stats().write_ops, 1u);
  std::vector<uint8_t> out(kPageSize);
  ASSERT_TRUE(dev.Read(0, kPageSize, out.data(), &clk).ok());
  EXPECT_EQ(memcmp(out.data(), data.data(), kPageSize), 0);
  inj.Disarm();
}

TEST(AsyncFaultDevice, UnarmedSubmitExecutesEagerly) {
  MemDevice inner(1 << 20);
  FaultyDevice dev(&inner, /*injector=*/nullptr);

  std::vector<uint8_t> data(kPageSize, 0x5C);
  auto h = dev.Submit(WriteReq(0, data), 0);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(inner.stats().write_ops, 1u)
      << "without an armed injector Submit executes like the base device";
  VirtualClock clk;
  ASSERT_TRUE(dev.Wait(*h, &clk).ok());
}

TEST(AsyncFaultDevice, InjectedFaultFiresAtCompletion) {
  MemDevice inner(1 << 20);
  FaultInjector inj(2);
  FaultRule rule;
  rule.kind = FaultKind::kTransientIoError;
  rule.op = OpClass::kRead;
  rule.device_tag = "data";
  inj.AddRule(rule);
  inj.Arm();
  FaultyDevice::Options opts;
  opts.tag = "data";
  FaultyDevice dev(&inner, &inj, opts);

  uint8_t buf[kPageSize] = {};
  IoRequest req;
  req.op = IoOp::kRead;
  req.offset = 0;
  req.len = kPageSize;
  req.out = buf;
  auto h = dev.Submit(req, 0);
  ASSERT_TRUE(h.ok()) << "submission must succeed; the fault is delivered "
                         "with the completion";
  VirtualClock clk;
  Status st = dev.Wait(*h, &clk);
  EXPECT_TRUE(st.IsTransientIoError()) << st.ToString();
  inj.Disarm();
}

TEST(AsyncFaultDevice, PowerCutLosesInFlightSubmissions) {
  MemDevice inner(1 << 20);
  FaultInjector inj(3);
  inj.AddRule(NeverMatches());
  inj.Arm();
  FaultyDevice::Options opts;
  opts.write_back = true;
  opts.tag = "data";
  FaultyDevice dev(&inner, &inj, opts);

  std::vector<uint8_t> data(kPageSize, 0xEE);
  auto h = dev.Submit(WriteReq(0, data), 0);
  ASSERT_TRUE(h.ok());
  dev.PowerCut(/*plan_seed=*/42, /*tear=*/false);

  VirtualClock clk;
  Status st = dev.Wait(*h, &clk);
  EXPECT_FALSE(st.ok()) << "a request still queued at the cut never "
                           "completes successfully";
  dev.Revive();
  std::vector<uint8_t> out(kPageSize, 0xFF);
  ASSERT_TRUE(dev.Read(0, kPageSize, out.data(), &clk).ok());
  std::vector<uint8_t> zeros(kPageSize, 0);
  EXPECT_EQ(memcmp(out.data(), zeros.data(), kPageSize), 0)
      << "the in-flight write must be lost entirely (never reached the "
         "volatile cache)";
  inj.Disarm();
}

TEST(AsyncFaultDevice, CancelledRequestNeverExecutes) {
  MemDevice inner(1 << 20);
  FaultInjector inj(4);
  inj.AddRule(NeverMatches());
  inj.Arm();
  FaultyDevice::Options opts;
  opts.tag = "data";
  FaultyDevice dev(&inner, &inj, opts);

  std::vector<uint8_t> data(kPageSize, 0x11);
  auto h = dev.Submit(WriteReq(0, data), 0);
  ASSERT_TRUE(h.ok());
  VirtualClock clk;
  ASSERT_TRUE(dev.Cancel(*h, &clk).ok());
  EXPECT_EQ(inner.stats().write_ops, 0u)
      << "a cancelled queued request must never reach the inner device";
  std::vector<uint8_t> out(kPageSize, 0xFF);
  ASSERT_TRUE(dev.Read(0, kPageSize, out.data(), &clk).ok());
  std::vector<uint8_t> zeros(kPageSize, 0);
  EXPECT_EQ(memcmp(out.data(), zeros.data(), kPageSize), 0);
  inj.Disarm();
}

TEST(AsyncFaultDevice, RetryResubmitsThroughTheCalendar) {
  // Satellite regression: a transient completion must be retried by
  // RESUBMITTING through the device so the new attempt re-reserves the
  // channel calendar at the post-backoff instant — the completion can never
  // land before submit time + backoff + device latency ("in the past").
  FlashConfig cfg;
  cfg.capacity_bytes = 4ull << 20;
  cfg.num_channels = 4;
  cfg.pages_per_block = 16;
  FlashSsd inner(cfg);
  FaultInjector inj(5);
  FaultRule rule;
  rule.kind = FaultKind::kTransientIoError;
  rule.op = OpClass::kRead;
  rule.device_tag = "data";
  rule.nth = 1;
  rule.repeat = 1;
  inj.AddRule(rule);
  inj.Arm();
  FaultyDevice::Options opts;
  opts.tag = "data";
  FaultyDevice dev(&inner, &inj, opts);

  std::vector<uint8_t> data(kPageSize, 0x77);
  VirtualClock wclk;
  ASSERT_TRUE(dev.Write(0, kPageSize, data.data(), &wclk).ok());

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  int64_t recovered_before = reg.GetCounter("fault.retry.recovered")->Value();
  const VTime t0 = 10 * kVSecond;
  VirtualClock clk(t0);
  std::vector<uint8_t> out(kPageSize);
  IoRequest req;
  req.op = IoOp::kRead;
  req.offset = 0;
  req.len = kPageSize;
  req.out = out.data();
  Status st = SubmitAndRetry("test read", &dev, req, &clk);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(memcmp(out.data(), data.data(), kPageSize), 0);
  EXPECT_GE(clk.now(), t0 + kRetryBackoffBase + cfg.page_read_latency)
      << "the retried completion must reflect the post-backoff calendar "
         "reservation, not the original submit instant";
  EXPECT_EQ(reg.GetCounter("fault.retry.recovered")->Value(),
            recovered_before + 1);
  inj.Disarm();
}

// ---------------------------------------------------------------------------
// Recovery idempotence + observability.
// ---------------------------------------------------------------------------

TEST(RecoveryIdempotence, DoubleRecoverConverges) {
  CrashConfig cfg;
  cfg.scheme = VersionScheme::kSiasV;
  cfg.seed = 0xD0;
  cfg.crash_point = "wal.post_fsync";
  cfg.nth = 23;
  CrashRunner runner(cfg);
  ASSERT_TRUE(runner.RunWorkload().ok());
  ASSERT_TRUE(runner.report().crashed);
  ASSERT_TRUE(runner.ReopenAndRecover().ok());
  ASSERT_TRUE(runner.CheckInvariants().ok());
  // Recover again on the already-recovered engine: redo is LSN-gated and
  // the rebuilds recreate their structures, so the state must not change.
  ASSERT_TRUE(runner.db()->Recover().ok());
  Status s = runner.CheckInvariants();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(RecoveryIdempotence, PacedCheckpointMidFlight) {
  // Die while the paced checkpoint drain is in progress; the control block
  // still points at the previous checkpoint, so replay covers the queue.
  CrashConfig cfg;
  cfg.scheme = VersionScheme::kSiasChains;
  cfg.seed = 0xD1;
  cfg.crash_point = "ckpt.paced.drain_pass";
  CrashRunner runner(cfg);
  ASSERT_TRUE(runner.RunWorkload().ok());
  ASSERT_TRUE(runner.report().crashed);
  ASSERT_TRUE(runner.ReopenAndRecover().ok());
  ASSERT_TRUE(runner.CheckInvariants().ok());
  ASSERT_TRUE(runner.db()->Recover().ok());
  Status s = runner.CheckInvariants();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(CrashSpans, SpanOpenAcrossCrashPointRecoversCleanly) {
  // A causal-span root held open across a crash-point unwind must neither
  // leak thread-local span state nor deadlock recovery: span push/pop is
  // malloc-free and latch-free (safe while the Status unwind runs engine
  // destructors), and the aggregator latch is only taken at root finish.
  VirtualClock clk;
  CrashConfig cfg;
  cfg.scheme = VersionScheme::kSiasV;
  cfg.seed = 0x5EED;
  cfg.crash_point = "wal.pre_fsync";
  cfg.nth = 9;
  {
    obs::TxnSpan root("CrashProbe", &clk);
    ASSERT_TRUE(root.active());
    clk.Advance(10);
    CrashRunner runner(cfg);
    ASSERT_TRUE(runner.RunWorkload().ok());
    ASSERT_TRUE(runner.report().crashed);
    // Recover while the root is still open: the engine's own spans nest
    // under it and must unwind balanced.
    ASSERT_TRUE(runner.ReopenAndRecover().ok());
    Status s = runner.CheckInvariants();
    EXPECT_TRUE(s.ok()) << s.ToString();
    EXPECT_TRUE(root.active());
    // Not committed: the crashed attempt lands in txn.latency.aborted.
  }
  EXPECT_FALSE(obs::SpanRootActive());

  // The thread's span machinery is balanced: a fresh root still records.
  Histogram before = obs::MetricsRegistry::Default()
                         .GetHistogram("txn.latency.committed")
                         ->Snapshot();
  {
    obs::TxnSpan root("CrashProbeAfter", &clk);
    ASSERT_TRUE(root.active());
    clk.Advance(25);
    root.set_committed(true);
  }
  Histogram after = obs::MetricsRegistry::Default()
                        .GetHistogram("txn.latency.committed")
                        ->Snapshot();
  EXPECT_EQ(after.count(), before.count() + 1);
}

TEST(RecoveryObservability, GaugesExported) {
  CrashConfig cfg;
  cfg.scheme = VersionScheme::kSiasV;
  cfg.seed = 0xD2;
  cfg.crash_point = "txn.commit.post_flush";
  cfg.nth = 15;
  CrashRunner runner(cfg);
  ASSERT_TRUE(runner.RunWorkload().ok());
  ASSERT_TRUE(runner.report().crashed);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  int64_t runs_before = reg.GetCounter("db.recovery.runs")->Value();
  ASSERT_TRUE(runner.ReopenAndRecover().ok());
  EXPECT_EQ(reg.GetCounter("db.recovery.runs")->Value(), runs_before + 1);
  EXPECT_GT(reg.GetGauge("db.recovery.records_replayed")->Value(), 0);
  EXPECT_GT(reg.GetGauge("db.recovery.vtime_ns")->Value(), 0);
}

}  // namespace
}  // namespace fault
}  // namespace sias
