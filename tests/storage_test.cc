// Unit tests for the storage layer: slotted page operations, checksums,
// compaction, and DiskManager extent allocation / persistence.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/random.h"
#include "device/mem_device.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace sias {
namespace {

class SlottedPageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    buf_.resize(kPageSize);
    page_ = std::make_unique<SlottedPage>(buf_.data());
    page_->Init(/*relation=*/7, /*page_no=*/3);
  }
  std::vector<uint8_t> buf_;
  std::unique_ptr<SlottedPage> page_;
};

TEST_F(SlottedPageTest, InitSetsHeader) {
  EXPECT_EQ(page_->header()->relation, 7u);
  EXPECT_EQ(page_->header()->page_no, 3u);
  EXPECT_EQ(page_->slot_count(), 0u);
  EXPECT_GT(page_->FreeSpace(), kPageSize - 100);
  EXPECT_DOUBLE_EQ(page_->FillFraction(), 0.0);
}

TEST_F(SlottedPageTest, InsertAndGet) {
  uint16_t s0 = page_->InsertTuple(Slice("hello"));
  uint16_t s1 = page_->InsertTuple(Slice("world!"));
  ASSERT_NE(s0, SlottedPage::kInvalidSlot);
  ASSERT_NE(s1, SlottedPage::kInvalidSlot);
  EXPECT_EQ(page_->GetTuple(s0).ToString(), "hello");
  EXPECT_EQ(page_->GetTuple(s1).ToString(), "world!");
  EXPECT_EQ(page_->slot_count(), 2u);
}

TEST_F(SlottedPageTest, FillsUpAndRejects) {
  std::string tuple(100, 'x');
  int count = 0;
  while (page_->InsertTuple(Slice(tuple)) != SlottedPage::kInvalidSlot) {
    count++;
    ASSERT_LT(count, 100);
  }
  // 8160 usable / 104 per tuple ≈ 78.
  EXPECT_GE(count, 70);
  EXPECT_GT(page_->FillFraction(), 0.95);
}

TEST_F(SlottedPageTest, OverwriteInPlaceKeepsLength) {
  uint16_t s = page_->InsertTuple(Slice("abcdef"));
  EXPECT_TRUE(page_->OverwriteTuple(s, Slice("ABCDEF")).ok());
  EXPECT_EQ(page_->GetTuple(s).ToString(), "ABCDEF");
  EXPECT_FALSE(page_->OverwriteTuple(s, Slice("short")).ok());
  EXPECT_FALSE(page_->OverwriteTuple(99, Slice("ABCDEF")).ok());
}

TEST_F(SlottedPageTest, DeleteMarksDead) {
  uint16_t s0 = page_->InsertTuple(Slice("dead"));
  uint16_t s1 = page_->InsertTuple(Slice("alive"));
  ASSERT_TRUE(page_->DeleteTuple(s0).ok());
  EXPECT_TRUE(page_->GetTuple(s0).empty());
  EXPECT_EQ(page_->GetTuple(s1).ToString(), "alive");
  EXPECT_FALSE(page_->DeleteTuple(s0).ok());  // already dead
}

TEST_F(SlottedPageTest, CompactReclaimsSpaceKeepsSlots) {
  uint16_t s0 = page_->InsertTuple(Slice(std::string(2000, 'a')));
  uint16_t s1 = page_->InsertTuple(Slice("keep-me"));
  uint16_t s2 = page_->InsertTuple(Slice(std::string(2000, 'b')));
  size_t before = page_->FreeSpace();
  ASSERT_TRUE(page_->DeleteTuple(s0).ok());
  ASSERT_TRUE(page_->DeleteTuple(s2).ok());
  page_->Compact();
  EXPECT_GT(page_->FreeSpace(), before + 3900);
  EXPECT_EQ(page_->GetTuple(s1).ToString(), "keep-me");  // TID stable
}

TEST_F(SlottedPageTest, ChecksumDetectsCorruption) {
  page_->InsertTuple(Slice("payload"));
  page_->UpdateChecksum();
  EXPECT_TRUE(page_->VerifyChecksum());
  buf_[5000] ^= 0x40;
  EXPECT_FALSE(page_->VerifyChecksum());
}

TEST_F(SlottedPageTest, FreshPageVerifies) {
  // Never-checksummed page (checksum 0) must pass verification.
  EXPECT_TRUE(page_->VerifyChecksum());
}

class DiskManagerTest : public ::testing::Test {
 protected:
  DiskManagerTest()
      : device_(256ull << 20), disk_(&device_, /*reserved_bytes=*/65536) {}
  MemDevice device_;
  DiskManager disk_;
};

TEST_F(DiskManagerTest, CreateAndAllocate) {
  ASSERT_TRUE(disk_.CreateRelation(1).ok());
  EXPECT_TRUE(disk_.HasRelation(1));
  EXPECT_FALSE(disk_.HasRelation(2));
  EXPECT_FALSE(disk_.CreateRelation(1).ok());  // duplicate

  auto p0 = disk_.AllocatePage(1);
  auto p1 = disk_.AllocatePage(1);
  ASSERT_TRUE(p0.ok());
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(*p0, 0u);
  EXPECT_EQ(*p1, 1u);
  EXPECT_EQ(*disk_.PageCount(1), 2u);
}

TEST_F(DiskManagerTest, UnknownRelationRejected) {
  EXPECT_FALSE(disk_.AllocatePage(9).ok());
  uint8_t buf[kPageSize];
  EXPECT_FALSE(disk_.ReadPage(9, 0, buf, nullptr).ok());
}

TEST_F(DiskManagerTest, PageBeyondEndRejected) {
  ASSERT_TRUE(disk_.CreateRelation(1).ok());
  ASSERT_TRUE(disk_.AllocatePage(1).ok());
  uint8_t buf[kPageSize] = {};
  EXPECT_TRUE(disk_.ReadPage(1, 0, buf, nullptr).ok());
  EXPECT_FALSE(disk_.ReadPage(1, 1, buf, nullptr).ok());
}

TEST_F(DiskManagerTest, RelationsLiveInDisjointExtents) {
  ASSERT_TRUE(disk_.CreateRelation(1).ok());
  ASSERT_TRUE(disk_.CreateRelation(2).ok());
  ASSERT_TRUE(disk_.AllocatePage(1).ok());
  ASSERT_TRUE(disk_.AllocatePage(2).ok());
  uint64_t o1 = *disk_.PageOffset(1, 0);
  uint64_t o2 = *disk_.PageOffset(2, 0);
  // Different relations get different 2 MB extents (the trace "swimlanes").
  EXPECT_GE(o1, 65536u);  // respects the reserved region
  uint64_t extent = DiskManager::kPagesPerExtent * kPageSize;
  EXPECT_EQ(o1 / extent != o2 / extent, true);
}

TEST_F(DiskManagerTest, SequentialPagesAreContiguous) {
  ASSERT_TRUE(disk_.CreateRelation(1).ok());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(disk_.AllocatePage(1).ok());
  for (int i = 0; i + 1 < 10; ++i) {
    EXPECT_EQ(*disk_.PageOffset(1, i) + kPageSize, *disk_.PageOffset(1, i + 1));
  }
}

TEST_F(DiskManagerTest, ReadWriteRoundTrip) {
  ASSERT_TRUE(disk_.CreateRelation(1).ok());
  ASSERT_TRUE(disk_.AllocatePage(1).ok());
  std::vector<uint8_t> page(kPageSize);
  Random rng(5);
  for (auto& b : page) b = static_cast<uint8_t>(rng.Next());
  VirtualClock clk;
  ASSERT_TRUE(disk_.WritePage(1, 0, page.data(), &clk).ok());
  std::vector<uint8_t> out(kPageSize);
  ASSERT_TRUE(disk_.ReadPage(1, 0, out.data(), &clk).ok());
  EXPECT_EQ(out, page);
}

TEST_F(DiskManagerTest, AllocatedBytesTracksPages) {
  ASSERT_TRUE(disk_.CreateRelation(1).ok());
  EXPECT_EQ(disk_.allocated_bytes(), 0u);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(disk_.AllocatePage(1).ok());
  EXPECT_EQ(disk_.allocated_bytes(), 5 * kPageSize);
}

TEST_F(DiskManagerTest, SerializeRestoresMapping) {
  ASSERT_TRUE(disk_.CreateRelation(1).ok());
  ASSERT_TRUE(disk_.CreateRelation(3).ok());
  for (int i = 0; i < 300; ++i) ASSERT_TRUE(disk_.AllocatePage(1).ok());
  ASSERT_TRUE(disk_.AllocatePage(3).ok());
  uint64_t off_1_299 = *disk_.PageOffset(1, 299);
  uint64_t off_3_0 = *disk_.PageOffset(3, 0);

  std::string meta;
  disk_.Serialize(&meta);

  DiskManager restored(&device_, 65536);
  ASSERT_TRUE(restored.Deserialize(Slice(meta)).ok());
  EXPECT_TRUE(restored.HasRelation(1));
  EXPECT_TRUE(restored.HasRelation(3));
  EXPECT_FALSE(restored.HasRelation(2));
  EXPECT_EQ(*restored.PageCount(1), 300u);
  EXPECT_EQ(*restored.PageOffset(1, 299), off_1_299);
  EXPECT_EQ(*restored.PageOffset(3, 0), off_3_0);
  // New allocations continue beyond the restored high-water mark.
  auto p = restored.AllocatePage(3);
  ASSERT_TRUE(p.ok());
  uint64_t extent = DiskManager::kPagesPerExtent * kPageSize;
  EXPECT_NE(*restored.PageOffset(3, 1) / extent, off_1_299 / extent);
}

TEST_F(DiskManagerTest, DeserializeRejectsGarbage) {
  DiskManager fresh(&device_, 0);
  EXPECT_FALSE(fresh.Deserialize(Slice("abc")).ok());
}

}  // namespace
}  // namespace sias
