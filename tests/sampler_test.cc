// Telemetry-export tests: histogram quantile edge cases (empty,
// single-sample, beyond-range overflow), MetricsSampler memory bounding
// under sustained capture, and Prometheus text-exposition conformance
// (name sanitization, label-value escaping, line-level format round-trip).
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "obs/metrics.h"
#include "obs/sampler.h"

namespace sias {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// Histogram quantile edge cases
// ---------------------------------------------------------------------------

TEST(HistogramEdgeTest, EmptyHistogramReportsZeroes) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 0u);
  EXPECT_EQ(h.Percentile(0), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.Percentile(100), 0u);
}

TEST(HistogramEdgeTest, SingleSampleDominatesEveryQuantile) {
  Histogram h;
  const VDuration v = 7 * kVMillisecond;
  h.Record(v);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.Min(), v);
  EXPECT_EQ(h.Max(), v);
  EXPECT_DOUBLE_EQ(h.Mean(), static_cast<double>(v));
  // Buckets are geometric (~4%): every quantile lands in the sample's
  // bucket, whose reported lower bound is at most one bucket below v.
  for (double p : {0.0, 50.0, 99.0, 100.0}) {
    VDuration q = h.Percentile(p);
    EXPECT_LE(q, v) << "p=" << p;
    EXPECT_GE(static_cast<double>(q), static_cast<double>(v) / 1.05)
        << "p=" << p;
  }
}

TEST(HistogramEdgeTest, SmallestRepresentableValueHitsFirstBucket) {
  Histogram h;
  h.Record(1);
  EXPECT_EQ(h.Percentile(50), 1u);
  h.Record(0);  // below the first bound; must not underflow the bucket index
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_LE(h.Percentile(50), 1u);
}

TEST(HistogramEdgeTest, OverflowValuesLandInFinalBucket) {
  Histogram h;
  // Both are far beyond the ~5000 s bucket coverage; they must be retained
  // (counted, reflected in max/mean) rather than dropped or misfiled.
  const VDuration huge = 100000ull * kVSecond;
  h.Record(huge);
  h.Record(~0ull);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.Max(), ~0ull);
  EXPECT_EQ(h.Min(), huge);
  // The overflow bucket reports the largest finite bucket bound (the last
  // geometric step below the 5000 s coverage limit), not a wrapped or
  // truncated value.
  EXPECT_GE(h.Percentile(50), 4000ull * kVSecond);
  EXPECT_LE(h.Percentile(50), 5000ull * kVSecond);
}

TEST(HistogramEdgeTest, QuantilesAreMonotoneInP) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) {
    h.Record(static_cast<VDuration>(i) * kVMicrosecond);
  }
  VDuration prev = 0;
  for (double p : {0.0, 10.0, 50.0, 90.0, 99.0, 100.0}) {
    VDuration q = h.Percentile(p);
    EXPECT_GE(q, prev) << "p=" << p;
    prev = q;
  }
  EXPECT_LE(h.Percentile(100), h.Max());
}

TEST(HistogramEdgeTest, ResetReturnsToEmptyState) {
  Histogram h;
  h.Record(3 * kVSecond);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(99), 0u);
  EXPECT_EQ(h.Max(), 0u);
}

// ---------------------------------------------------------------------------
// MetricsSampler memory bounding
// ---------------------------------------------------------------------------

TEST(MetricsSamplerTest, StaysBoundedUnderTenThousandCaptures) {
  MetricsRegistry reg;
  Counter* ticks = reg.GetCounter("sampler.ticks");
  constexpr size_t kCapacity = 64;
  constexpr uint64_t kCaptures = 10000;
  MetricsSampler sampler(&reg, kCapacity);
  for (uint64_t i = 0; i < kCaptures; ++i) {
    ticks->Increment();
    sampler.Capture(static_cast<VTime>(i) * kVMillisecond);
  }
  EXPECT_EQ(sampler.capacity(), kCapacity);
  EXPECT_EQ(sampler.size(), kCapacity);
  EXPECT_EQ(sampler.dropped(), kCaptures - kCapacity);
  // The ring keeps the newest samples: the latest one carries the final
  // virtual timestamp and the fully-incremented counter.
  auto latest = sampler.Latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->vtime, static_cast<VTime>(kCaptures - 1) * kVMillisecond);
  EXPECT_EQ(latest->snapshot.counters.at("sampler.ticks"),
            static_cast<int64_t>(kCaptures));
}

TEST(MetricsSamplerTest, JsonDumpCarriesCapacityDroppedAndSamples) {
  MetricsRegistry reg;
  reg.GetCounter("x")->Add(5);
  MetricsSampler sampler(&reg, 4);
  for (int i = 0; i < 10; ++i) sampler.Capture(i);
  std::string json = sampler.ToJson();
  EXPECT_NE(json.find("\"capacity\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dropped\":6"), std::string::npos) << json;
  EXPECT_NE(json.find("\"samples\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"vtime_ns\":9"), std::string::npos) << json;
  // Evicted samples must not linger in the dump.
  EXPECT_EQ(json.find("\"vtime_ns\":5,"), std::string::npos) << json;
}

TEST(MetricsSamplerTest, ClearEmptiesTheSeries) {
  MetricsRegistry reg;
  MetricsSampler sampler(&reg, 8);
  sampler.Capture(1);
  sampler.Capture(2);
  ASSERT_EQ(sampler.size(), 2u);
  sampler.Clear();
  EXPECT_EQ(sampler.size(), 0u);
  EXPECT_FALSE(sampler.Latest().has_value());
  EXPECT_EQ(sampler.LatestPrometheus(), "");
}

// ---------------------------------------------------------------------------
// Prometheus exposition format
// ---------------------------------------------------------------------------

TEST(PrometheusTest, NameSanitization) {
  EXPECT_EQ(PrometheusName("mvcc.gc.pages_examined"),
            "mvcc_gc_pages_examined");
  EXPECT_EQ(PrometheusName("flash.gc-page-moves"), "flash_gc_page_moves");
  EXPECT_EQ(PrometheusName("already_fine:subsystem"),
            "already_fine:subsystem");
  // Leading digits are illegal in the exposition format.
  EXPECT_EQ(PrometheusName("9lives"), "_9lives");
  EXPECT_EQ(PrometheusName("a b\tc"), "a_b_c");
}

TEST(PrometheusTest, LabelValueEscaping) {
  EXPECT_EQ(PrometheusEscapeLabelValue("plain"), "plain");
  EXPECT_EQ(PrometheusEscapeLabelValue("back\\slash"), "back\\\\slash");
  EXPECT_EQ(PrometheusEscapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(PrometheusEscapeLabelValue("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(PrometheusEscapeLabelValue("\\\"\n"), "\\\\\\\"\\n");
}

// Minimal exposition-format line validator: `name{labels} value` where the
// name is [a-zA-Z_:][a-zA-Z0-9_:]*, the optional label block holds
// key="escaped value" pairs, and the value parses as a number.
bool ValidExpositionLine(const std::string& line) {
  size_t i = 0;
  auto name_start = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  auto name_char = [&](char c) {
    return name_start(c) || std::isdigit(static_cast<unsigned char>(c));
  };
  if (i >= line.size() || !name_start(line[i])) return false;
  while (i < line.size() && name_char(line[i])) ++i;
  if (i < line.size() && line[i] == '{') {
    ++i;
    while (i < line.size() && line[i] != '}') {
      if (!name_start(line[i])) return false;
      while (i < line.size() && name_char(line[i])) ++i;
      if (i + 1 >= line.size() || line[i] != '=' || line[i + 1] != '"') {
        return false;
      }
      i += 2;
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\') {
          // Only \\, \" and \n are legal escapes.
          if (i + 1 >= line.size()) return false;
          char n = line[i + 1];
          if (n != '\\' && n != '"' && n != 'n') return false;
          ++i;
        } else if (line[i] == '\n') {
          return false;  // raw newline inside a label value
        }
        ++i;
      }
      if (i >= line.size()) return false;
      ++i;  // closing quote
      if (i < line.size() && line[i] == ',') ++i;
    }
    if (i >= line.size()) return false;
    ++i;  // closing brace
  }
  if (i >= line.size() || line[i] != ' ') return false;
  ++i;
  // Value: a decimal number, optionally signed/fractional/exponent.
  size_t pos = 0;
  try {
    (void)std::stod(line.substr(i), &pos);
  } catch (...) {
    return false;
  }
  return i + pos == line.size();
}

TEST(PrometheusTest, SnapshotExportRoundTripsTheFormat) {
  MetricsRegistry reg;
  reg.GetCounter("flash.host_page_programs")->Add(1234);
  reg.GetCounter("9starts.with.digit")->Add(1);
  reg.GetGauge("db.device.free_blocks")->Set(-7);
  HistogramMetric* h = reg.GetHistogram("mvcc.visible_depth");
  for (int i = 1; i <= 100; ++i) h->Record(i * kVMicrosecond);

  std::map<std::string, std::string> labels = {
      {"bench", "write_reduction"},
      {"scheme", "SIAS-V \"t2\"\nnext\\line"},
  };
  std::string text = reg.Snapshot().ToPrometheusText(labels);

  size_t samples = 0, type_lines = 0;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      ++type_lines;
      continue;
    }
    EXPECT_TRUE(ValidExpositionLine(line)) << "bad line: " << line;
    ++samples;
  }
  // counter + counter + gauge + histogram summary; the histogram emits four
  // quantiles plus _sum and _count.
  EXPECT_EQ(type_lines, 4u);
  EXPECT_EQ(samples, 3u + 4u + 2u);
  EXPECT_NE(text.find("flash_host_page_programs{"), std::string::npos);
  EXPECT_NE(text.find("_9starts_with_digit{"), std::string::npos);
  EXPECT_NE(text.find("db_device_free_blocks{"), std::string::npos) << text;
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.999\""), std::string::npos);
  EXPECT_NE(text.find("mvcc_visible_depth_count{"), std::string::npos);
  EXPECT_NE(text.find("scheme=\"SIAS-V \\\"t2\\\"\\nnext\\\\line\""),
            std::string::npos)
      << text;
}

TEST(PrometheusTest, SamplerLatestExportMatchesFinalCapture) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("ops.total");
  MetricsSampler sampler(&reg, 2);
  EXPECT_EQ(sampler.LatestPrometheus(), "");
  c->Add(10);
  sampler.Capture(1 * kVSecond);
  c->Add(32);
  sampler.Capture(2 * kVSecond);
  std::string text = sampler.LatestPrometheus({{"host", "ci"}});
  EXPECT_NE(text.find("ops_total{host=\"ci\"} 42"), std::string::npos)
      << text;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line.rfind("# ", 0) == 0) continue;
    EXPECT_TRUE(ValidExpositionLine(line)) << "bad line: " << line;
  }
}

}  // namespace
}  // namespace obs
}  // namespace sias
