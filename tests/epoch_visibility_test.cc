// Oracle-checked concurrency suite for the epoch-based latch-free snapshot
// read path.
//
// Three layers of proof, from probabilistic to deterministic:
//
//  1. VisibilityOracle — randomized concurrent schedules of writers, readers
//     and an aggressive vacuum thread. Every read records its snapshot and
//     result; every write records its xid and final commit verdict. After
//     the threads join, a single-threaded snapshot-isolation oracle replays
//     each recorded read against the full write history: the visible
//     version of a vid under snapshot S is exactly the committed write with
//     the largest xid contained in S (per-item histories have strictly
//     increasing xmin thanks to first-updater-wins, so "largest contained
//     xid" and "newest-first walk" agree). Any divergence — a read served a
//     version GC reclaimed too early, or skipped one it should have seen —
//     fails with the seed needed to replay the schedule.
//
//  2. DeterministicAbaWindow — a schedule-controlling hook
//     (SiasTable::SetReadPauseHookForTest) parks a reader in the exact
//     window the epoch protocol exists for: after the version vector is
//     loaded, before any entry is dereferenced. Vacuum then relocates the
//     version and queues the page wipe; the test asserts the wipe cannot
//     run while the reader is pinned, that the stale pointer still reads
//     the correct bytes, and that everything drains once the reader exits.
//
//  3. ChainOf regression — the dangling-anchor and xmin-monotonicity guards
//     on the (now latch-free) diagnostic chain walk, driven through real GC
//     page recycling so the anchor predecessor genuinely dangles.
//
// Runs under ASan and TSan via scripts/sanitize.sh (whole-ctest legs).
// Seed and iteration count are env-overridable for long soak runs:
//   SIAS_VISIBILITY_SEED=<n>  SIAS_STRESS_ITERS=<n>  ctest -R epoch_visibility

#include <atomic>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "device/flash_ssd.h"
#include "mvcc/epoch.h"
#include "obs/metrics.h"
#include "test_env.h"

namespace sias {
namespace {

int EnvInt(const char* name, int fallback) {
  if (const char* env = std::getenv(name)) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

// ---------------------------------------------------------------------------
// 1. Randomized schedules vs. the single-threaded SI oracle.

struct WriteRecord {
  Vid vid;
  Xid xid;
  bool tombstone;
  bool committed;
  std::string value;
};

struct ReadRecord {
  Vid vid;
  Snapshot snapshot;
  std::optional<std::string> result;
};

class EpochVisibilityTest : public ::testing::TestWithParam<VersionScheme> {};

TEST_P(EpochVisibilityTest, RandomScheduleMatchesSiOracle) {
  const uint64_t seed =
      static_cast<uint64_t>(EnvInt("SIAS_VISIBILITY_SEED", 0x51A5));
  const int ops = EnvInt("SIAS_STRESS_ITERS", 250);
  SCOPED_TRACE("replay with SIAS_VISIBILITY_SEED=" + std::to_string(seed));

  TestEnv env(/*pool_frames=*/128, /*with_wal=*/true, /*lock_timeout_ms=*/20);
  auto owned = env.MakeTable(GetParam(), 1);
  auto* table = static_cast<SiasTable*>(owned.get());

  constexpr int kItems = 8;
  constexpr int kWriters = 2;
  constexpr int kReaders = 2;

  // Seed data: one committed version per item, recorded like any write.
  std::vector<Vid> vids;
  std::vector<WriteRecord> history;
  {
    VirtualClock clk;
    auto txn = env.txns_.Begin(&clk);
    for (int i = 0; i < kItems; ++i) {
      std::string value = "seed" + std::to_string(i);
      auto vid = table->Insert(txn.get(), Slice(value));
      ASSERT_TRUE(vid.ok()) << vid.status().ToString();
      vids.push_back(*vid);
      history.push_back(
          WriteRecord{*vid, txn->xid(), false, true, std::move(value)});
    }
    ASSERT_TRUE(env.txns_.Commit(txn.get()).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> fatal{false};
  std::vector<std::vector<WriteRecord>> writes(kWriters);
  std::vector<std::vector<ReadRecord>> reads(kReaders);

  auto writer = [&](int id) {
    Random rng(seed ^ 0xA11CEull ^ static_cast<uint64_t>(id * 7919 + 1));
    VirtualClock clk;
    for (int i = 0; i < ops && !fatal.load(); ++i) {
      auto txn = env.txns_.Begin(&clk);
      Vid vid = vids[rng.Uniform(0, kItems - 1)];
      // Only the last item ever gets tombstoned, so the value-carrying
      // items keep producing visibility decisions for the whole run.
      bool tombstone = vid == vids.back() && rng.Uniform(0, 99) < 10;
      std::string value = "x" + std::to_string(txn->xid());
      Status s = tombstone ? table->Delete(txn.get(), vid)
                           : table->Update(txn.get(), vid, Slice(value));
      bool committed = false;
      if (s.ok() && rng.Uniform(0, 99) >= 15) {
        committed = env.txns_.Commit(txn.get()).ok();
      } else {
        // Serialization conflict, lock timeout, deleted item, or an
        // intentional abort: either way the write must leave no trace.
        (void)env.txns_.Abort(txn.get());
      }
      writes[id].push_back(
          WriteRecord{vid, txn->xid(), tombstone, committed, std::move(value)});
    }
  };

  auto reader = [&](int id) {
    Random rng(seed ^ 0xBEADull ^ static_cast<uint64_t>(id * 104729 + 3));
    VirtualClock clk;
    for (int i = 0; i < ops && !fatal.load(); ++i) {
      auto txn = env.txns_.Begin(&clk);
      for (int k = 0; k < 4; ++k) {
        Vid vid = vids[rng.Uniform(0, kItems - 1)];
        auto r = table->Read(txn.get(), vid);
        if (!r.ok()) {
          ADD_FAILURE() << "read failed: " << r.status().ToString();
          fatal.store(true);
          break;
        }
        reads[id].push_back(ReadRecord{vid, txn->snapshot(), *r});
      }
      (void)env.txns_.Commit(txn.get());
    }
  };

  auto vacuum = [&] {
    VirtualClock clk;
    while (!stop.load()) {
      GcStats gs;
      Status s = table->GarbageCollect(env.txns_.GcHorizon(), &clk, &gs);
      if (!s.ok()) {
        ADD_FAILURE() << "vacuum failed: " << s.ToString();
        fatal.store(true);
        return;
      }
      std::this_thread::yield();
    }
  };

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) threads.emplace_back(writer, w);
  for (int r = 0; r < kReaders; ++r) threads.emplace_back(reader, r);
  std::thread vac(vacuum);
  for (auto& t : threads) t.join();
  stop.store(true);
  vac.join();
  ASSERT_FALSE(fatal.load());

  for (auto& w : writes) {
    history.insert(history.end(), w.begin(), w.end());
  }

  // Oracle replay: for each recorded read, the expected result is the
  // committed write with the largest xid the snapshot contains.
  size_t checked = 0;
  for (const auto& thread_reads : reads) {
    for (const auto& r : thread_reads) {
      const WriteRecord* visible = nullptr;
      for (const auto& w : history) {
        if (w.vid != r.vid || !w.committed) continue;
        if (!r.snapshot.Contains(w.xid)) continue;
        if (visible == nullptr || w.xid > visible->xid) visible = &w;
      }
      ASSERT_NE(visible, nullptr) << "no committed seed visible to snapshot";
      if (visible->tombstone) {
        EXPECT_FALSE(r.result.has_value())
            << "vid " << r.vid << ": tombstone by xid " << visible->xid
            << " should hide the item, read returned " << *r.result;
      } else {
        ASSERT_TRUE(r.result.has_value())
            << "vid " << r.vid << ": expected value of xid " << visible->xid
            << ", read returned nothing (version reclaimed too early?)";
        EXPECT_EQ(*r.result, visible->value)
            << "vid " << r.vid << ": snapshot of xid " << r.snapshot.xid
            << " must see write of xid " << visible->xid;
      }
      checked++;
    }
  }
  EXPECT_GT(checked, 0u);

  // The suite's quiesce invariant: once every thread is done, the deferred
  // queue must drain to exactly zero.
  EpochManager::Global().Quiesce();
  EXPECT_EQ(EpochManager::Global().pending(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Schemes, EpochVisibilityTest,
                         ::testing::Values(VersionScheme::kSiasV,
                                           VersionScheme::kSiasChains),
                         [](const auto& info) {
                           return info.param == VersionScheme::kSiasV
                                      ? "SiasV"
                                      : "SiasChains";
                         });

// ---------------------------------------------------------------------------
// 2. Deterministic interleaving: reader parked inside the ABA window.

std::atomic<Vid> g_pause_target{kInvalidVid};
std::atomic<bool> g_pause_armed{false};
std::atomic<bool> g_reader_paused{false};
std::atomic<bool> g_resume_reader{false};

void PauseReaderHook(Vid vid) {
  if (vid != g_pause_target.load(std::memory_order_seq_cst)) return;
  if (!g_pause_armed.exchange(false, std::memory_order_seq_cst)) return;
  g_reader_paused.store(true, std::memory_order_seq_cst);
  while (!g_resume_reader.load(std::memory_order_seq_cst)) {
    std::this_thread::yield();
  }
}

TEST(EpochAbaWindowTest, VacuumDefersWipeWhileReaderHoldsStaleVector) {
  TestEnv env(/*pool_frames=*/128, /*with_wal=*/true);
  auto owned = env.MakeTable(VersionScheme::kSiasV, 1);
  auto* table = static_cast<SiasTable*>(owned.get());
  VirtualClock clk;

  // Page 0: item x plus three fillers, all committed.
  Vid x;
  std::vector<Vid> fillers;
  {
    auto txn = env.txns_.Begin(&clk);
    auto vx = table->Insert(txn.get(), Slice("A"));
    ASSERT_TRUE(vx.ok());
    x = *vx;
    for (int i = 0; i < 3; ++i) {
      auto vf = table->Insert(txn.get(), Slice("filler"));
      ASSERT_TRUE(vf.ok());
      fillers.push_back(*vf);
    }
    ASSERT_TRUE(env.txns_.Commit(txn.get()).ok());
  }
  // Tombstone the fillers: page 0 is now 1 live out of 7 slots — below the
  // relocate threshold, so GC will move x's version and wipe the page.
  {
    auto txn = env.txns_.Begin(&clk);
    for (Vid f : fillers) ASSERT_TRUE(table->Delete(txn.get(), f).ok());
    ASSERT_TRUE(env.txns_.Commit(txn.get()).ok());
  }

  EpochManager& em = EpochManager::Global();
  em.Quiesce();  // drain setup-time retires for a clean pending() baseline
  ASSERT_EQ(em.pending(), 0u);

  std::vector<Tid> vec_before = table->vid_map_v().Get(x);
  ASSERT_EQ(vec_before.size(), 1u);
  const PageNumber victim_page = vec_before[0].page;

  // Reader transaction whose snapshot sees x = "A". Own clock: the main
  // thread keeps charging `clk` (GC) while the reader thread runs.
  VirtualClock reader_clk;
  auto rtxn = env.txns_.Begin(&reader_clk);

  // Park the reader between the vector load and the first dereference —
  // exactly the window where vacuum can swap the map underneath it.
  g_pause_target.store(x, std::memory_order_seq_cst);
  g_reader_paused.store(false, std::memory_order_seq_cst);
  g_resume_reader.store(false, std::memory_order_seq_cst);
  g_pause_armed.store(true, std::memory_order_seq_cst);
  SiasTable::SetReadPauseHookForTest(&PauseReaderHook);

  Result<std::optional<std::string>> read_result = Status::Internal("not run");
  std::thread reader([&] { read_result = table->Read(rtxn.get(), x); });
  while (!g_reader_paused.load(std::memory_order_seq_cst)) {
    std::this_thread::yield();
  }

  // Vacuum with the reader pinned: relocates x's version off the victim
  // page, unpublishes the page and queues its wipe behind the epoch.
  GcStats gs;
  ASSERT_TRUE(table->GarbageCollect(env.txns_.GcHorizon(), &clk, &gs).ok());
  EXPECT_GE(gs.pages_reclaimed, 1u);
  EXPECT_EQ(gs.versions_relocated, 1u);

  std::vector<Tid> vec_after = table->vid_map_v().Get(x);
  ASSERT_EQ(vec_after.size(), 1u);
  EXPECT_NE(vec_after[0].page, victim_page) << "version was not relocated";

  // The wipe (and the retired vector copies) must NOT run while the reader
  // is pinned: its stale vector still points into the victim page.
  EXPECT_GT(em.pending(), 0u);
  em.Advance();
  EXPECT_EQ(em.TryReclaim(), 0u)
      << "reclaimed a page while a reader was pinned in an older epoch";

  // Unpark. The reader dereferences its stale TID; the bytes must still be
  // intact, so it reads the correct value.
  g_resume_reader.store(true, std::memory_order_seq_cst);
  reader.join();
  SiasTable::SetReadPauseHookForTest(nullptr);
  g_pause_target.store(kInvalidVid, std::memory_order_seq_cst);

  ASSERT_TRUE(read_result.ok()) << read_result.status().ToString();
  ASSERT_TRUE((*read_result).has_value());
  EXPECT_EQ(**read_result, "A");
  ASSERT_TRUE(env.txns_.Commit(rtxn.get()).ok());

  // Reader gone: the deferred wipe may now land, and the queue drains dry.
  em.Advance();
  EXPECT_GT(em.TryReclaim(), 0u);
  EXPECT_EQ(em.pending(), 0u);

  // The wiped page went to the free list only after the drain; the next
  // page the region opens is recycled from it. (Seal first: GC's
  // relocation left a non-full open page behind.)
  table->region().SealOpenPage();
  {
    auto txn = env.txns_.Begin(&clk);
    ASSERT_TRUE(table->Insert(txn.get(), Slice("recycler")).ok());
    ASSERT_TRUE(env.txns_.Commit(txn.get()).ok());
  }
  EXPECT_GE(table->append_stats().pages_recycled, 1u);

  // And x still reads "A" from its relocated home.
  {
    auto txn = env.txns_.Begin(&clk);
    auto r = table->Read(txn.get(), x);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r->has_value());
    EXPECT_EQ(**r, "A");
    ASSERT_TRUE(env.txns_.Commit(txn.get()).ok());
  }
}

// ---------------------------------------------------------------------------
// 3. ChainOf guards on the latch-free traversal, against real GC recycling.

class ChainGuardTest : public ::testing::Test {
 protected:
  // Builds: x@v1 on page 0, the rest of page 0 filled with
  // committed-then-tombstoned fillers, then x@v2 on page 1. After GC,
  // page 0 is wiped and recycled while v2's predecessor pointer still
  // names v1's old slot — the documented dangling anchor. Page boundaries
  // are discovered from the actual TIDs, not guessed from page capacity.
  void BuildDanglingAnchor() {
    table_owned_ = env_.MakeTable(VersionScheme::kSiasChains, 1);
    table_ = static_cast<SiasTable*>(table_owned_.get());
    {
      auto txn = env_.txns_.Begin(&clk_);
      Tid x_tid;
      auto vx = table_->Insert(txn.get(), Slice("v1"), &x_tid);
      ASSERT_TRUE(vx.ok());
      x_ = *vx;
      ASSERT_EQ(x_tid, (Tid{0, 0}));
      // Fill the rest of page 0 (watching where each version lands); the
      // first filler that spills to page 1 stays alive as a keeper.
      std::string bulk(512, 'f');
      for (int i = 0; i < 64; ++i) {
        Tid ft;
        auto vf = table_->Insert(txn.get(), Slice(bulk), &ft);
        ASSERT_TRUE(vf.ok());
        if (ft.page != 0) break;  // keeper: never deleted
        fillers_.push_back(*vf);
      }
      ASSERT_GT(fillers_.size(), 2u);
      ASSERT_TRUE(env_.txns_.Commit(txn.get()).ok());
    }
    // Tombstone the page-0 fillers (tombstones land on page 1): page 0 is
    // now fully dead except x@v1, which v2 supersedes next.
    {
      auto txn = env_.txns_.Begin(&clk_);
      for (Vid f : fillers_) ASSERT_TRUE(table_->Delete(txn.get(), f).ok());
      ASSERT_TRUE(env_.txns_.Commit(txn.get()).ok());
    }
    {
      auto txn = env_.txns_.Begin(&clk_);
      Tid v2_tid;
      ASSERT_TRUE(table_->Update(txn.get(), x_, Slice("v2"), &v2_tid).ok());
      ASSERT_EQ(v2_tid.page, 1u);
      // Keeper items raise page 1's live share above the relocate AND
      // prune thresholds: GC must leave v2 (and its dangling predecessor
      // pointer) byte-for-byte in place. Page 1 then holds 1 keeper
      // filler + |fillers_| tombstones + v2 + 2*|fillers_| keepers.
      for (size_t i = 0; i < 2 * fillers_.size(); ++i) {
        Tid kt;
        ASSERT_TRUE(table_->Insert(txn.get(), Slice("keep"), &kt).ok());
        ASSERT_EQ(kt.page, 1u) << "keepers spilled off v2's page";
      }
      ASSERT_TRUE(env_.txns_.Commit(txn.get()).ok());
    }
    v1_tid_ = Tid{0, 0};

    GcStats gs;
    ASSERT_TRUE(
        table_->GarbageCollect(env_.txns_.GcHorizon(), &clk_, &gs).ok());
    ASSERT_EQ(gs.pages_reclaimed, 1u);  // page 0 only; page 1 stays put
    EpochManager::Global().Quiesce();
    ASSERT_EQ(EpochManager::Global().pending(), 0u);
    // v2 must still be where the update appended it.
    ASSERT_EQ(table_->vid_map().Get(x_).page, 1u);
  }

  TestEnv env_{/*pool_frames=*/128, /*with_wal=*/true};
  VirtualClock clk_;
  std::unique_ptr<MvccTable> table_owned_;
  SiasTable* table_ = nullptr;
  Vid x_ = kInvalidVid;
  std::vector<Vid> fillers_;
  Tid v1_tid_;
};

TEST_F(ChainGuardTest, AnchorPredDanglingIntoForeignItemStopsWalk) {
  BuildDanglingAnchor();
  // Recycle page 0 with a *different* item: its first version lands in
  // v1's old slot, so x's anchor predecessor now names a foreign tuple.
  Vid y;
  {
    auto txn = env_.txns_.Begin(&clk_);
    auto vy = table_->Insert(txn.get(), Slice("intruder"), nullptr);
    ASSERT_TRUE(vy.ok());
    y = *vy;
    ASSERT_TRUE(env_.txns_.Commit(txn.get()).ok());
  }
  Tid y_tid = table_->vid_map().Get(y);
  ASSERT_EQ(y_tid, v1_tid_) << "test setup: y must reuse v1's slot";

  auto chain = table_->ChainOf(x_, &clk_);
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  // The walk must stop at the anchor (v2): following the dangling pred
  // would hand back y's version under x's vid.
  ASSERT_EQ(chain->size(), 1u);
  EXPECT_NE((*chain)[0], v1_tid_);

  auto txn = env_.txns_.Begin(&clk_);
  auto r = table_->Read(txn.get(), x_);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->has_value());
  EXPECT_EQ(**r, "v2");
  ASSERT_TRUE(env_.txns_.Commit(txn.get()).ok());
}

TEST_F(ChainGuardTest, AnchorPredDanglingIntoSameItemStopsOnXminOrder) {
  BuildDanglingAnchor();
  // Recycle page 0 with the SAME item: x's next version v3 lands in v1's
  // old slot. v2's predecessor pointer now resolves to a tuple of the
  // right vid but a NEWER xmin — without the monotonicity guard the walk
  // v3 -> v2 -> (pred = v3's slot) -> v2 -> ... would cycle forever.
  {
    auto txn = env_.txns_.Begin(&clk_);
    ASSERT_TRUE(table_->Update(txn.get(), x_, Slice("v3")).ok());
    ASSERT_TRUE(env_.txns_.Commit(txn.get()).ok());
  }
  Tid v3_tid = table_->vid_map().Get(x_);
  ASSERT_EQ(v3_tid, v1_tid_) << "test setup: v3 must reuse v1's slot";

  auto chain = table_->ChainOf(x_, &clk_);
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  ASSERT_EQ(chain->size(), 2u);  // v3, v2 — guard cuts the loop
  EXPECT_EQ((*chain)[0], v3_tid);

  auto txn = env_.txns_.Begin(&clk_);
  auto r = table_->Read(txn.get(), x_);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->has_value());
  EXPECT_EQ(**r, "v3");
  ASSERT_TRUE(env_.txns_.Commit(txn.get()).ok());
}

TEST_F(ChainGuardTest, SameTxnStackedVersionsStayLinked) {
  // One transaction may stack several versions of the same item (a
  // New-Order with a duplicate item id updates the same stock row twice),
  // so the top links of the chain share an xmin. The monotonicity guard
  // must treat equal xmin as a real link: a concurrent snapshot has to
  // walk past BOTH uncommitted versions to the older committed one, not
  // come back empty. (Regression: a >= guard truncated these chains; a
  // crash mid-transaction made the truncation durable, and every
  // post-recovery read of the item missed the committed version.)
  table_owned_ = env_.MakeTable(VersionScheme::kSiasChains, 1);
  table_ = static_cast<SiasTable*>(table_owned_.get());
  Vid x;
  {
    auto txn = env_.txns_.Begin(&clk_);
    auto vx = table_->Insert(txn.get(), Slice("v1"), nullptr);
    ASSERT_TRUE(vx.ok());
    x = *vx;
    ASSERT_TRUE(env_.txns_.Commit(txn.get()).ok());
  }
  auto reader = env_.txns_.Begin(&clk_);  // snapshot: only v1 committed
  auto writer = env_.txns_.Begin(&clk_);
  ASSERT_TRUE(table_->Update(writer.get(), x, Slice("v2")).ok());
  ASSERT_TRUE(table_->Update(writer.get(), x, Slice("v3")).ok());

  // All three versions stay linked (v3 and v2 share the writer's xmin).
  auto chain = table_->ChainOf(x, &clk_);
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  EXPECT_EQ(chain->size(), 3u);

  // The concurrent snapshot walks the equal-xmin links down to v1.
  {
    auto r = table_->Read(reader.get(), x);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_TRUE(r->has_value()) << "walk stopped at an equal-xmin link";
    EXPECT_EQ(**r, "v1");
  }
  ASSERT_TRUE(env_.txns_.Commit(writer.get()).ok());

  // The pre-writer snapshot still resolves v1 after the commit...
  {
    auto r = table_->Read(reader.get(), x);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_TRUE(r->has_value());
    EXPECT_EQ(**r, "v1");
  }
  ASSERT_TRUE(env_.txns_.Commit(reader.get()).ok());

  // ...and a fresh snapshot sees the newest stacked version.
  {
    auto txn = env_.txns_.Begin(&clk_);
    auto r = table_->Read(txn.get(), x);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r->has_value());
    EXPECT_EQ(**r, "v3");
    ASSERT_TRUE(env_.txns_.Commit(txn.get()).ok());
  }
}

// ---------------------------------------------------------------------------
// 4. Deterministic out-of-order completions vs. the SI oracle.
//
// The resumable batched read path keeps up to io_depth page reads in flight
// on a multi-channel flash device; channel queuing makes completions land in
// a different order than submissions (a deterministic schedule in virtual
// time). Snapshot visibility must be untouched by that reordering: an old
// snapshot's batch returns exactly the pre-update values, a fresh one the
// post-update values, slot for slot against the sequential Read() oracle.

TEST(OooCompletionTest, ReadMultiUnderReorderedCompletionsMatchesOracle) {
  for (VersionScheme scheme :
       {VersionScheme::kSiasV, VersionScheme::kSiasChains}) {
    SCOPED_TRACE(ToString(scheme));
    // Flash-backed mini engine: 4 channels so queuing reorders completions,
    // a 24-frame pool so batch reads actually miss and hit the device.
    FlashConfig fcfg;
    fcfg.capacity_bytes = 64ull << 20;
    fcfg.num_channels = 4;
    fcfg.pages_per_block = 16;
    FlashSsd device(fcfg);
    MemDevice wal_device(1ull << 30);
    DiskManager disk(&device);
    WalWriter wal(&wal_device, 0, 1ull << 30);
    BufferPool pool(&disk, 24, [&wal](Lsn lsn, VirtualClock* clk) {
      return wal.FlushTo(lsn, clk);
    });
    Clog clog;
    LockManager locks(200);
    TransactionManager txns(&clog, &locks);
    ASSERT_TRUE(disk.CreateRelation(1).ok());
    TableEnv tenv{&pool, &txns, &wal};
    SiasTable table(1, tenv, scheme);

    VirtualClock clk;
    // ~15 tuples per 8 KB page: 600 old + 600 new versions span ~80 pages
    // against 24 frames, so the batched reads genuinely miss to the device.
    constexpr int kItems = 600;
    std::vector<Vid> vids;
    {
      auto txn = txns.Begin(&clk);
      std::string bulk(480, 'p');
      for (int i = 0; i < kItems; ++i) {
        auto vid = table.Insert(txn.get(), Slice("old" + std::to_string(i) +
                                                 bulk));
        ASSERT_TRUE(vid.ok());
        vids.push_back(*vid);
      }
      ASSERT_TRUE(txns.Commit(txn.get()).ok());
    }

    auto old_snap = txns.Begin(&clk);  // snapshot taken before the updates

    {
      auto txn = txns.Begin(&clk);
      std::string bulk(480, 'q');
      for (int i = 0; i < kItems; ++i) {
        ASSERT_TRUE(table.Update(txn.get(), vids[i],
                                 Slice("new" + std::to_string(i) + bulk))
                        .ok());
      }
      ASSERT_TRUE(txns.Commit(txn.get()).ok());
    }
    auto fresh_snap = txns.Begin(&clk);
    ASSERT_TRUE(pool.FlushAll(&clk).ok());

    // Old and new versions interleave across pages and channels; the
    // depth-8 run misses repeatedly, so it genuinely pipelines (and
    // completes out of submission order on the queued channels).
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    int64_t submits_before = reg.GetCounter("io.submits")->Value();

    for (auto [txn, prefix] : {std::pair{old_snap.get(), std::string("old")},
                               std::pair{fresh_snap.get(), std::string("new")}}) {
      std::vector<std::optional<std::string>> rows;
      ASSERT_TRUE(table.ReadMulti(txn, vids, /*io_depth=*/8, &rows).ok());
      ASSERT_EQ(rows.size(), vids.size());
      for (int i = 0; i < kItems; ++i) {
        ASSERT_TRUE(rows[i].has_value()) << "vid " << vids[i];
        EXPECT_EQ(rows[i]->substr(0, prefix.size() + std::to_string(i).size()),
                  prefix + std::to_string(i))
            << "snapshot leaked across the reordered completions";
        auto oracle = table.Read(txn, vids[i]);
        ASSERT_TRUE(oracle.ok());
        EXPECT_EQ(rows[i], *oracle) << "vid " << vids[i];
      }
    }
    EXPECT_GT(reg.GetCounter("io.submits")->Value(), submits_before)
        << "the batch never reached the async submission path (pool too "
           "large or batch too small for a real pipeline)";

    ASSERT_TRUE(txns.Commit(old_snap.get()).ok());
    ASSERT_TRUE(txns.Commit(fresh_snap.get()).ok());
  }
}

}  // namespace
}  // namespace sias
