// EpochManager unit tests and the reclamation stress suite (run under ASan
// and TSan by scripts/sanitize.sh, which executes the whole ctest suite per
// sanitizer leg).
//
// The stress tests exercise the exact protocol the engine relies on:
// readers pin an epoch, load an atomically published pointer and keep
// dereferencing it while a writer installs replacements and retires the
// superseded objects. A use-after-free here is the bug class the epoch
// queue exists to prevent — ASan turns it into a hard failure — and the
// drain-to-zero assertions prove reclamation is not just safe but complete.

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mvcc/epoch.h"

namespace sias {
namespace {

/// Iteration scaling: SIAS_STRESS_ITERS overrides the default for the
/// long 1000-iteration sanitizer runs (see docs/CONCURRENCY.md).
int StressIters(int fallback) {
  if (const char* env = std::getenv("SIAS_STRESS_ITERS")) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

TEST(EpochTest, EnterPinsAndExitUnpins) {
  EpochManager& em = EpochManager::Global();
  ASSERT_FALSE(em.InEpoch());
  uint64_t e = em.Enter();
  EXPECT_TRUE(em.InEpoch());
  EXPECT_EQ(e, em.current());
  EXPECT_LE(em.MinActive(), e);
  em.Exit();
  EXPECT_FALSE(em.InEpoch());
}

TEST(EpochTest, NestedEnterKeepsOutermostPin) {
  EpochManager& em = EpochManager::Global();
  uint64_t outer = em.Enter();
  em.Advance();
  uint64_t inner = em.Enter();  // re-entrant: must keep the outer pin
  EXPECT_EQ(inner, outer);
  EXPECT_EQ(em.MinActive(), outer);
  em.Exit();
  EXPECT_TRUE(em.InEpoch());  // still pinned by the outer enter
  em.Exit();
  EXPECT_FALSE(em.InEpoch());
}

TEST(EpochTest, MinActiveEqualsCurrentWhenIdle) {
  EpochManager& em = EpochManager::Global();
  ASSERT_FALSE(em.InEpoch());
  em.Quiesce();  // also drains any leftovers from sibling tests
  EXPECT_EQ(em.MinActive(), em.current());
}

TEST(EpochTest, MinActiveTracksOldestPinnedThread) {
  EpochManager& em = EpochManager::Global();
  std::atomic<uint64_t> pinned_epoch{0};
  std::atomic<bool> release{false};
  std::thread reader([&] {
    pinned_epoch.store(em.Enter(), std::memory_order_seq_cst);
    while (!release.load(std::memory_order_seq_cst)) {
      std::this_thread::yield();
    }
    em.Exit();
  });
  while (pinned_epoch.load(std::memory_order_seq_cst) == 0) {
    std::this_thread::yield();
  }
  uint64_t old_epoch = pinned_epoch.load(std::memory_order_seq_cst);
  em.Advance();
  em.Advance();
  EXPECT_EQ(em.MinActive(), old_epoch);  // the pinned thread holds it back
  release.store(true, std::memory_order_seq_cst);
  reader.join();
  EXPECT_GT(em.MinActive(), old_epoch);
}

TEST(EpochTest, RetireWaitsForPinnedReaderThenReclaims) {
  EpochManager& em = EpochManager::Global();
  em.Quiesce();
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  std::thread reader([&] {
    em.Enter();
    entered.store(true, std::memory_order_seq_cst);
    while (!release.load(std::memory_order_seq_cst)) {
      std::this_thread::yield();
    }
    em.Exit();
  });
  while (!entered.load(std::memory_order_seq_cst)) std::this_thread::yield();

  std::atomic<int> freed{0};
  em.Retire([&freed] { freed.fetch_add(1, std::memory_order_seq_cst); });
  EXPECT_EQ(em.pending(), 1u);
  em.Advance();
  // The reader is pinned in an epoch <= the retire stamp: nothing may run.
  EXPECT_EQ(em.TryReclaim(), 0u);
  EXPECT_EQ(freed.load(std::memory_order_seq_cst), 0);
  EXPECT_EQ(em.pending(), 1u);

  release.store(true, std::memory_order_seq_cst);
  reader.join();
  em.Advance();
  EXPECT_EQ(em.TryReclaim(), 1u);
  EXPECT_EQ(freed.load(std::memory_order_seq_cst), 1);
  EXPECT_EQ(em.pending(), 0u);
}

TEST(EpochTest, ReclaimHandlesOutOfOrderStamps) {
  // Two threads can retire around a concurrent Advance, so queue stamps are
  // not sorted. A ripe entry sitting behind a fresher one must still run.
  EpochManager& em = EpochManager::Global();
  em.Quiesce();
  std::atomic<int> first{0};
  std::atomic<int> second{0};
  em.Retire([&first] { first.fetch_add(1, std::memory_order_seq_cst); });
  em.Advance();
  {
    // Pin the *new* epoch so only the first entry is ripe after the next
    // advance; the second entry's stamp is >= our pin.
    EpochGuard pin;
    em.Retire([&second] { second.fetch_add(1, std::memory_order_seq_cst); });
  }
  std::atomic<int> third{0};
  em.Retire([&third] { third.fetch_add(1, std::memory_order_seq_cst); });
  em.Advance();
  EXPECT_EQ(em.TryReclaim(), 3u);
  EXPECT_EQ(first.load(std::memory_order_seq_cst), 1);
  EXPECT_EQ(second.load(std::memory_order_seq_cst), 1);
  EXPECT_EQ(third.load(std::memory_order_seq_cst), 1);
}

TEST(EpochTest, QuiesceDrainsEverything) {
  EpochManager& em = EpochManager::Global();
  int freed = 0;
  for (int i = 0; i < 16; ++i) {
    em.Retire([&freed] { freed++; });
    if (i % 3 == 0) em.Advance();
  }
  em.Quiesce();
  EXPECT_EQ(freed, 16);
  EXPECT_EQ(em.pending(), 0u);
}

TEST(EpochTest, SlotsAreReleasedAtThreadExitAndReused) {
  // More sequential threads than slots: each must claim, use and release a
  // slot, or ClaimSlot would run out and abort.
  EpochManager& em = EpochManager::Global();
  for (size_t i = 0; i < EpochManager::kMaxThreads + 16; ++i) {
    std::thread t([&em] {
      EpochGuard pin;
      EXPECT_TRUE(em.InEpoch());
    });
    t.join();
  }
  EXPECT_EQ(em.MinActive(), em.current());
}

// ---------------------------------------------------------------------------
// Reclamation stress: RCU-style publish/retire under concurrent pinned
// readers. ASan converts any premature free into a hard failure; the final
// quiesce asserts the deferred queue drains to zero.

TEST(EpochStressTest, PinnedReadersNeverSeeReclaimedMemory) {
  EpochManager& em = EpochManager::Global();
  em.Quiesce();

  struct Node {
    uint64_t generation;
    // Redundant payload so a use-after-free has bytes to corrupt and the
    // self-check below has something to validate.
    uint64_t check[8];
  };
  auto make = [](uint64_t gen) {
    Node* n = new Node();
    n->generation = gen;
    for (uint64_t& c : n->check) c = gen * 1315423911ull;
    return n;
  };

  std::atomic<Node*> published{make(0)};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  const int kReaders = 4;
  const int iters = StressIters(300);

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_seq_cst)) {
        EpochGuard pin;
        Node* n = published.load(std::memory_order_seq_cst);
        // Dereference repeatedly while pinned: if the writer's retire queue
        // freed this node early, ASan flags it right here.
        for (int spin = 0; spin < 8; ++spin) {
          uint64_t gen = n->generation;
          for (uint64_t c : n->check) {
            ASSERT_EQ(c, gen * 1315423911ull) << "torn or reclaimed node";
          }
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Writer + aggressive vacuum: every install retires the predecessor, and
  // every few installs we advance and reclaim as hard as possible.
  for (int i = 1; i <= iters; ++i) {
    Node* next = make(static_cast<uint64_t>(i));
    Node* old = published.exchange(next, std::memory_order_seq_cst);
    em.Retire([old] { delete old; });
    if (i % 4 == 0) {
      em.Advance();
      em.TryReclaim();
    }
  }
  // Keep churning until every reader got scheduled at least once — on a
  // single-core box the fixed-iteration loop above can finish before any
  // reader ran, and the race being tested needs them overlapping.
  uint64_t extra_gen = static_cast<uint64_t>(iters);
  while (reads.load(std::memory_order_seq_cst) <
         static_cast<uint64_t>(kReaders)) {
    Node* next = make(++extra_gen);
    Node* old = published.exchange(next, std::memory_order_seq_cst);
    em.Retire([old] { delete old; });
    em.Advance();
    em.TryReclaim();
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_seq_cst);
  for (auto& t : readers) t.join();
  EXPECT_GE(reads.load(std::memory_order_relaxed),
            static_cast<uint64_t>(kReaders));

  // Quiesce: with every reader gone the queue must drain to exactly zero.
  em.Quiesce();
  EXPECT_EQ(em.pending(), 0u);
  delete published.load(std::memory_order_seq_cst);
}

TEST(EpochStressTest, ReaderPinnedInOldEpochBlocksOnlyItsGeneration) {
  // One reader camps in an old epoch while the writer churns: retires
  // stamped after the camper's epoch must stay queued, everything older
  // reclaims, and the backlog drains the moment the camper leaves.
  EpochManager& em = EpochManager::Global();
  em.Quiesce();

  std::atomic<bool> camped{false};
  std::atomic<bool> release{false};
  std::thread camper([&] {
    EpochGuard pin;
    camped.store(true, std::memory_order_seq_cst);
    while (!release.load(std::memory_order_seq_cst)) {
      std::this_thread::yield();
    }
  });
  while (!camped.load(std::memory_order_seq_cst)) std::this_thread::yield();

  std::atomic<int> freed{0};
  const int iters = StressIters(300);
  for (int i = 0; i < iters; ++i) {
    em.Retire([&freed] { freed.fetch_add(1, std::memory_order_seq_cst); });
    em.Advance();
    em.TryReclaim();
  }
  // Every retire was stamped at-or-after the camper's pinned epoch: none
  // may have run.
  EXPECT_EQ(freed.load(std::memory_order_seq_cst), 0);
  EXPECT_EQ(em.pending(), static_cast<size_t>(iters));

  release.store(true, std::memory_order_seq_cst);
  camper.join();
  em.Advance();
  EXPECT_EQ(em.TryReclaim(), static_cast<size_t>(iters));
  EXPECT_EQ(freed.load(std::memory_order_seq_cst), iters);
  EXPECT_EQ(em.pending(), 0u);
}

}  // namespace
}  // namespace sias
