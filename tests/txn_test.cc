// Unit tests for the transaction layer: clog, snapshots, transaction
// manager lifecycle, lock manager, first-updater-wins building blocks, and
// end-to-end snapshot-isolation anomaly regression tests (which anomalies SI
// must prevent, and which — write skew — it permits by definition).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "device/mem_device.h"
#include "engine/database.h"
#include "txn/clog.h"
#include "txn/lock_manager.h"
#include "txn/snapshot.h"
#include "txn/txn_manager.h"

namespace sias {
namespace {

TEST(ClogTest, LifecycleStatuses) {
  Clog clog;
  clog.Extend(100);
  EXPECT_EQ(clog.Get(50), TxnStatus::kInProgress);
  clog.SetCommitted(50);
  EXPECT_EQ(clog.Get(50), TxnStatus::kCommitted);
  clog.SetAborted(51);
  EXPECT_EQ(clog.Get(51), TxnStatus::kAborted);
  EXPECT_TRUE(clog.IsCommitted(50));
  EXPECT_FALSE(clog.IsCommitted(51));
}

TEST(ClogTest, SpecialXids) {
  Clog clog;
  EXPECT_EQ(clog.Get(kFrozenXid), TxnStatus::kCommitted);
  EXPECT_EQ(clog.Get(kInvalidXid), TxnStatus::kAborted);
}

TEST(ClogTest, GrowsAcrossChunks) {
  Clog clog;
  Xid big = 200000;  // beyond one 65536-entry chunk
  clog.Extend(big);
  clog.SetCommitted(big);
  EXPECT_TRUE(clog.IsCommitted(big));
  EXPECT_EQ(clog.Get(big - 1), TxnStatus::kInProgress);
}

TEST(ClogTest, SerializeRoundTrip) {
  Clog clog;
  clog.Extend(10);
  clog.SetCommitted(3);
  clog.SetAborted(4);
  std::string out;
  clog.Serialize(&out);

  Clog restored;
  ASSERT_TRUE(restored.Deserialize(Slice(out)).ok());
  EXPECT_EQ(restored.Get(3), TxnStatus::kCommitted);
  EXPECT_EQ(restored.Get(4), TxnStatus::kAborted);
  EXPECT_EQ(restored.Get(5), TxnStatus::kInProgress);
}

TEST(ClogTest, ConcurrentSettersAreSafe) {
  Clog clog;
  clog.Extend(40000);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (Xid x = 2 + t; x < 40000; x += 4) clog.SetCommitted(x);
    });
  }
  for (auto& th : threads) th.join();
  for (Xid x = 2; x < 40000; ++x) EXPECT_TRUE(clog.IsCommitted(x));
}

TEST(SnapshotTest, ContainsRules) {
  Snapshot snap;
  snap.xid = 10;
  snap.xmax = 12;
  snap.concurrent = {7, 9};
  EXPECT_TRUE(snap.Contains(10));   // self
  EXPECT_TRUE(snap.Contains(5));    // old, not concurrent
  EXPECT_FALSE(snap.Contains(7));   // concurrent
  EXPECT_FALSE(snap.Contains(9));   // concurrent
  EXPECT_TRUE(snap.Contains(8));    // finished before us
  EXPECT_FALSE(snap.Contains(12));  // future
  EXPECT_FALSE(snap.Contains(99));  // future
  EXPECT_TRUE(snap.Contains(kFrozenXid));
  EXPECT_FALSE(snap.Contains(kInvalidXid));
}

TEST(SnapshotTest, CreatorVisibleRequiresCommit) {
  Clog clog;
  clog.Extend(10);
  Snapshot snap;
  snap.xid = 10;
  snap.xmax = 11;
  snap.concurrent = {};
  EXPECT_FALSE(snap.CreatorVisible(5, clog));  // in snapshot but not committed
  clog.SetCommitted(5);
  EXPECT_TRUE(snap.CreatorVisible(5, clog));
  clog.SetAborted(6);
  EXPECT_FALSE(snap.CreatorVisible(6, clog));
  EXPECT_TRUE(snap.CreatorVisible(10, clog));  // own writes, uncommitted
}

class TxnManagerTest : public ::testing::Test {
 protected:
  TxnManagerTest() : mgr_(&clog_, &locks_) {}
  Clog clog_;
  LockManager locks_;
  TransactionManager mgr_;
  VirtualClock clk_;
};

TEST_F(TxnManagerTest, BeginAssignsIncreasingXids) {
  auto t1 = mgr_.Begin(&clk_);
  auto t2 = mgr_.Begin(&clk_);
  EXPECT_LT(t1->xid(), t2->xid());
  EXPECT_EQ(mgr_.ActiveCount(), 2u);
  ASSERT_TRUE(mgr_.Commit(t1.get()).ok());
  ASSERT_TRUE(mgr_.Abort(t2.get()).ok());
  EXPECT_EQ(mgr_.ActiveCount(), 0u);
}

TEST_F(TxnManagerTest, SnapshotSeesPriorCommitsOnly) {
  auto t1 = mgr_.Begin(&clk_);
  Xid x1 = t1->xid();
  auto t2 = mgr_.Begin(&clk_);  // t1 still running: concurrent
  EXPECT_FALSE(t2->snapshot().Contains(x1));
  ASSERT_TRUE(mgr_.Commit(t1.get()).ok());
  // Snapshot is fixed at Begin: still not visible to t2 (repeatable reads).
  EXPECT_FALSE(t2->snapshot().Contains(x1));
  auto t3 = mgr_.Begin(&clk_);
  EXPECT_TRUE(t3->snapshot().CreatorVisible(x1, clog_));
  ASSERT_TRUE(mgr_.Commit(t2.get()).ok());
  ASSERT_TRUE(mgr_.Commit(t3.get()).ok());
}

TEST_F(TxnManagerTest, CommitFlipsClogAndState) {
  auto t = mgr_.Begin(&clk_);
  EXPECT_EQ(clog_.Get(t->xid()), TxnStatus::kInProgress);
  ASSERT_TRUE(mgr_.Commit(t.get()).ok());
  EXPECT_EQ(clog_.Get(t->xid()), TxnStatus::kCommitted);
  EXPECT_EQ(t->state(), TxnState::kCommitted);
  EXPECT_FALSE(mgr_.Commit(t.get()).ok());  // double commit rejected
}

TEST_F(TxnManagerTest, AbortRunsUndoInReverseOrder) {
  auto t = mgr_.Begin(&clk_);
  std::vector<int> order;
  t->AddUndo([&] { order.push_back(1); });
  t->AddUndo([&] { order.push_back(2); });
  ASSERT_TRUE(mgr_.Abort(t.get()).ok());
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(clog_.Get(t->xid()), TxnStatus::kAborted);
}

TEST_F(TxnManagerTest, CommitDoesNotRunUndo) {
  auto t = mgr_.Begin(&clk_);
  bool ran = false;
  t->AddUndo([&] { ran = true; });
  ASSERT_TRUE(mgr_.Commit(t.get()).ok());
  EXPECT_FALSE(ran);
}

TEST_F(TxnManagerTest, FailedCommitHookAborts) {
  mgr_.set_commit_hook(
      [](Transaction*) { return Status::IoError("wal device gone"); });
  auto t = mgr_.Begin(&clk_);
  Status s = mgr_.Commit(t.get());
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(t->state(), TxnState::kAborted);
  EXPECT_EQ(clog_.Get(t->xid()), TxnStatus::kAborted);
}

TEST_F(TxnManagerTest, LocksReleasedAtEnd) {
  auto t = mgr_.Begin(&clk_);
  ASSERT_TRUE(locks_.AcquireExclusive(1, 42, t->xid(), &clk_).ok());
  t->AddLock(1, 42);
  EXPECT_EQ(locks_.HeldCount(), 1u);
  ASSERT_TRUE(mgr_.Commit(t.get()).ok());
  EXPECT_EQ(locks_.HeldCount(), 0u);
}

TEST_F(TxnManagerTest, OldestActiveXidTracksHorizon) {
  EXPECT_EQ(mgr_.OldestActiveXid(), mgr_.NextXid());
  auto t1 = mgr_.Begin(&clk_);
  auto t2 = mgr_.Begin(&clk_);
  EXPECT_EQ(mgr_.OldestActiveXid(), t1->xid());
  ASSERT_TRUE(mgr_.Commit(t1.get()).ok());
  EXPECT_EQ(mgr_.OldestActiveXid(), t2->xid());
  ASSERT_TRUE(mgr_.Commit(t2.get()).ok());
  EXPECT_EQ(mgr_.OldestActiveXid(), mgr_.NextXid());
}

TEST(LockManagerTest, ExclusiveBlocksOtherXid) {
  LockManager locks(/*timeout_ms=*/50);
  VirtualClock clk;
  ASSERT_TRUE(locks.AcquireExclusive(1, 7, 100, &clk).ok());
  Status s = locks.AcquireExclusive(1, 7, 101, &clk);
  EXPECT_TRUE(s.IsLockTimeout());
  locks.Release(1, 7, 100, 0);
  EXPECT_TRUE(locks.AcquireExclusive(1, 7, 101, &clk).ok());
}

TEST(LockManagerTest, ReentrantForSameXid) {
  LockManager locks;
  VirtualClock clk;
  ASSERT_TRUE(locks.AcquireExclusive(1, 7, 100, &clk).ok());
  ASSERT_TRUE(locks.AcquireExclusive(1, 7, 100, &clk).ok());
  EXPECT_EQ(locks.HeldCount(), 1u);
}

TEST(LockManagerTest, TryAcquireFailsFast) {
  LockManager locks;
  ASSERT_TRUE(locks.TryAcquireExclusive(1, 7, 100).ok());
  Status s = locks.TryAcquireExclusive(1, 7, 101);
  EXPECT_TRUE(s.IsSerializationFailure());
}

TEST(LockManagerTest, WaiterWakesOnRelease) {
  LockManager locks(/*timeout_ms=*/5000);
  VirtualClock clk1(0);
  ASSERT_TRUE(locks.AcquireExclusive(1, 7, 100, &clk1).ok());
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    VirtualClock clk2(0);
    Status s = locks.AcquireExclusive(1, 7, 101, &clk2);
    EXPECT_TRUE(s.ok());
    // Virtual wait: clk2 advanced to the holder's release time.
    EXPECT_GE(clk2.now(), 5 * kVMillisecond);
    acquired = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  locks.Release(1, 7, 100, /*release_vtime=*/5 * kVMillisecond);
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(LockManagerTest, DistinctRowsDoNotConflict) {
  LockManager locks;
  VirtualClock clk;
  EXPECT_TRUE(locks.AcquireExclusive(1, 7, 100, &clk).ok());
  EXPECT_TRUE(locks.AcquireExclusive(1, 8, 101, &clk).ok());
  EXPECT_TRUE(locks.AcquireExclusive(2, 7, 102, &clk).ok());
  EXPECT_EQ(locks.HeldCount(), 3u);
}

// ---------------------------------------------------------------------------
// SI anomaly regressions, run against a full Database under every version
// scheme: the in-place SI heap and both SIAS append-storage variants must
// expose identical transaction-level semantics.

class SiAnomalyTest : public ::testing::TestWithParam<VersionScheme> {
 protected:
  void SetUp() override {
    data_ = std::make_unique<MemDevice>(1ull << 30);
    wal_ = std::make_unique<MemDevice>(1ull << 30);
    DatabaseOptions opts;
    opts.data_device = data_.get();
    opts.wal_device = wal_.get();
    opts.pool_frames = 256;
    opts.lock_timeout_ms = 20;  // conflicts should fail fast, not hang
    auto db = Database::Open(opts);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    auto t = db_->CreateTable(
        "kv", Schema{{"k", ColumnType::kInt64}, {"v", ColumnType::kInt64}},
        GetParam());
    ASSERT_TRUE(t.ok());
    kv_ = *t;
  }

  Vid Put(int64_t k, int64_t v) {
    auto txn = db_->Begin(&clk_);
    auto vid = kv_->Insert(txn.get(), Row{{k, v}});
    EXPECT_TRUE(vid.ok()) << vid.status().ToString();
    EXPECT_TRUE(db_->Commit(txn.get()).ok());
    return *vid;
  }

  int64_t Value(Transaction* txn, Vid vid) {
    auto row = kv_->Get(txn, vid);
    EXPECT_TRUE(row.ok()) << row.status().ToString();
    EXPECT_TRUE(row->has_value());
    return (*row)->GetInt(1);
  }

  std::unique_ptr<MemDevice> data_, wal_;
  std::unique_ptr<Database> db_;
  Table* kv_ = nullptr;
  VirtualClock clk_;
};

TEST_P(SiAnomalyTest, FirstCommitterWinsOnWriteWriteConflict) {
  Vid vid = Put(1, 10);
  auto t1 = db_->Begin(&clk_);
  auto t2 = db_->Begin(&clk_);  // concurrent with t1
  ASSERT_TRUE(kv_->Update(t1.get(), vid, Row{{int64_t{1}, int64_t{11}}}).ok());
  ASSERT_TRUE(db_->Commit(t1.get()).ok());
  // t2's snapshot predates t1's commit: its update of the same row must
  // fail with a serialization error, never silently clobber t1's version.
  Status s = kv_->Update(t2.get(), vid, Row{{int64_t{1}, int64_t{12}}});
  EXPECT_TRUE(s.IsSerializationFailure()) << s.ToString();
  ASSERT_TRUE(db_->Abort(t2.get()).ok());
  auto t3 = db_->Begin(&clk_);
  EXPECT_EQ(Value(t3.get(), vid), 11);
  ASSERT_TRUE(db_->Commit(t3.get()).ok());
}

TEST_P(SiAnomalyTest, ConcurrentUpdaterBlocksThenFails) {
  Vid vid = Put(1, 10);
  auto t1 = db_->Begin(&clk_);
  auto t2 = db_->Begin(&clk_);
  ASSERT_TRUE(kv_->Update(t1.get(), vid, Row{{int64_t{1}, int64_t{11}}}).ok());
  // First updater holds the row lock: the second updater must not proceed
  // while t1 is undecided (here the bounded wait times out).
  Status s = kv_->Update(t2.get(), vid, Row{{int64_t{1}, int64_t{12}}});
  EXPECT_TRUE(s.IsRetryable()) << s.ToString();
  ASSERT_TRUE(db_->Abort(t2.get()).ok());
  ASSERT_TRUE(db_->Commit(t1.get()).ok());
}

TEST_P(SiAnomalyTest, NoLostUpdateAfterAbortedFirstUpdater) {
  Vid vid = Put(1, 10);
  auto t1 = db_->Begin(&clk_);
  ASSERT_TRUE(kv_->Update(t1.get(), vid, Row{{int64_t{1}, int64_t{11}}}).ok());
  ASSERT_TRUE(db_->Abort(t1.get()).ok());
  // The aborted update releases the row: a later transaction updates from
  // the original value.
  auto t2 = db_->Begin(&clk_);
  EXPECT_EQ(Value(t2.get(), vid), 10);
  ASSERT_TRUE(kv_->Update(t2.get(), vid, Row{{int64_t{1}, int64_t{20}}}).ok());
  ASSERT_TRUE(db_->Commit(t2.get()).ok());
  auto t3 = db_->Begin(&clk_);
  EXPECT_EQ(Value(t3.get(), vid), 20);
  ASSERT_TRUE(db_->Commit(t3.get()).ok());
}

TEST_P(SiAnomalyTest, RepeatableReadsWithinSnapshot) {
  Vid vid = Put(1, 10);
  auto reader = db_->Begin(&clk_);
  EXPECT_EQ(Value(reader.get(), vid), 10);
  auto writer = db_->Begin(&clk_);
  ASSERT_TRUE(
      kv_->Update(writer.get(), vid, Row{{int64_t{1}, int64_t{99}}}).ok());
  ASSERT_TRUE(db_->Commit(writer.get()).ok());
  // No non-repeatable read: the reader's snapshot is fixed at Begin.
  EXPECT_EQ(Value(reader.get(), vid), 10);
  ASSERT_TRUE(db_->Commit(reader.get()).ok());
  auto after = db_->Begin(&clk_);
  EXPECT_EQ(Value(after.get(), vid), 99);
  ASSERT_TRUE(db_->Commit(after.get()).ok());
}

TEST_P(SiAnomalyTest, WriteSkewIsPermitted) {
  // The classic SI anomaly: two transactions each read both rows (sum 100,
  // constraint "sum >= 0" app-side) and write DIFFERENT rows. No
  // write-write conflict exists, so snapshot isolation commits both —
  // this test documents that the engine is SI, not serializable.
  Vid x = Put(1, 50);
  Vid y = Put(2, 50);
  auto t1 = db_->Begin(&clk_);
  auto t2 = db_->Begin(&clk_);
  int64_t sum1 = Value(t1.get(), x) + Value(t1.get(), y);
  int64_t sum2 = Value(t2.get(), x) + Value(t2.get(), y);
  EXPECT_EQ(sum1, 100);
  EXPECT_EQ(sum2, 100);
  ASSERT_TRUE(
      kv_->Update(t1.get(), x, Row{{int64_t{1}, int64_t{-50}}}).ok());
  ASSERT_TRUE(
      kv_->Update(t2.get(), y, Row{{int64_t{2}, int64_t{-50}}}).ok());
  EXPECT_TRUE(db_->Commit(t1.get()).ok());
  EXPECT_TRUE(db_->Commit(t2.get()).ok());
  auto t3 = db_->Begin(&clk_);
  EXPECT_EQ(Value(t3.get(), x) + Value(t3.get(), y), -100);
  ASSERT_TRUE(db_->Commit(t3.get()).ok());
}

TEST_P(SiAnomalyTest, NoDirtyReads) {
  Vid vid = Put(1, 10);
  auto writer = db_->Begin(&clk_);
  ASSERT_TRUE(
      kv_->Update(writer.get(), vid, Row{{int64_t{1}, int64_t{77}}}).ok());
  // Uncommitted write is invisible to a concurrent reader.
  auto reader = db_->Begin(&clk_);
  EXPECT_EQ(Value(reader.get(), vid), 10);
  ASSERT_TRUE(db_->Commit(reader.get()).ok());
  ASSERT_TRUE(db_->Commit(writer.get()).ok());
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SiAnomalyTest,
                         ::testing::Values(VersionScheme::kSi,
                                           VersionScheme::kSiasChains,
                                           VersionScheme::kSiasV),
                         [](const auto& info) {
                           switch (info.param) {
                             case VersionScheme::kSi: return "Si";
                             case VersionScheme::kSiasChains:
                               return "SiasChains";
                             case VersionScheme::kSiasV: return "SiasV";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace sias
