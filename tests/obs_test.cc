// Observability layer tests: metric registration and identity, sharded
// counter aggregation under concurrent writers, histogram summaries, JSON
// snapshots, and trace ring-buffer semantics (wraparound, drop accounting).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/op_trace.h"

namespace sias {
namespace obs {
namespace {

// Tests construct their own registry/tracer instances: Default() is
// process-global and accumulates engine activity from other tests.

TEST(MetricsRegistryTest, LookupInternsAndReturnsStablePointers) {
  MetricsRegistry reg;
  Counter* c1 = reg.GetCounter("a.counter");
  Counter* c2 = reg.GetCounter("a.counter");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(c1, reg.GetCounter("b.counter"));

  Gauge* g1 = reg.GetGauge("a.gauge");
  EXPECT_EQ(g1, reg.GetGauge("a.gauge"));
  HistogramMetric* h1 = reg.GetHistogram("a.hist");
  EXPECT_EQ(h1, reg.GetHistogram("a.hist"));

  // Counters, gauges and histograms live in separate namespaces: the same
  // name can denote one of each.
  EXPECT_NE(static_cast<void*>(reg.GetCounter("same")),
            static_cast<void*>(reg.GetGauge("same")));
}

TEST(MetricsRegistryTest, CounterAddAndReset) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("ops");
  EXPECT_EQ(c->Value(), 0);
  c->Increment();
  c->Add(41);
  EXPECT_EQ(c->Value(), 42);
  c->Reset();
  EXPECT_EQ(c->Value(), 0);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry reg;
  Gauge* g = reg.GetGauge("depth");
  g->Set(7);
  EXPECT_EQ(g->Value(), 7);
  g->Add(-3);
  EXPECT_EQ(g->Value(), 4);
  g->Set(-1);
  EXPECT_EQ(g->Value(), -1);
}

TEST(MetricsRegistryTest, ShardedCounterAggregatesConcurrentIncrements) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("hot");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c->Value(), int64_t{kThreads} * kPerThread);
}

TEST(MetricsRegistryTest, ConcurrentLookupsOfSameNameAgree) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &seen, t] {
      Counter* c = reg.GetCounter("race.me");
      c->Increment();
      seen[t] = c;
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(seen[0]->Value(), kThreads);
}

TEST(MetricsRegistryTest, HistogramRecordsUnderConcurrency) {
  MetricsRegistry reg;
  HistogramMetric* h = reg.GetHistogram("lat");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h] {
      for (int i = 1; i <= kPerThread; ++i) {
        h->Record(static_cast<VDuration>(i) * kVMicrosecond);
      }
    });
  }
  for (auto& th : threads) th.join();
  Histogram merged = h->Snapshot();
  EXPECT_EQ(merged.count(), uint64_t{kThreads} * kPerThread);
  EXPECT_GE(merged.Max(), kPerThread * kVMicrosecond);
  EXPECT_GT(merged.Percentile(50), 0);
}

TEST(MetricsRegistryTest, SnapshotCarriesAllMetricKinds) {
  MetricsRegistry reg;
  reg.GetCounter("c.one")->Add(5);
  reg.GetGauge("g.one")->Set(-2);
  reg.GetHistogram("h.one")->Record(3 * kVMillisecond);

  MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.count("c.one"), 1u);
  EXPECT_EQ(snap.counters.at("c.one"), 5);
  ASSERT_EQ(snap.gauges.count("g.one"), 1u);
  EXPECT_EQ(snap.gauges.at("g.one"), -2);
  ASSERT_EQ(snap.histograms.count("h.one"), 1u);
  EXPECT_EQ(snap.histograms.at("h.one").count, 1u);
  EXPECT_GT(snap.histograms.at("h.one").max, 0);

  std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"c.one\":5"), std::string::npos);
  EXPECT_NE(json.find("\"g.one\":-2"), std::string::npos);
  EXPECT_NE(json.find("\"h.one\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(MetricsRegistryTest, ResetAllZeroesCountersAndHistograms) {
  MetricsRegistry reg;
  reg.GetCounter("c")->Add(9);
  reg.GetHistogram("h")->Record(kVMicrosecond);
  reg.GetGauge("g")->Set(3);
  reg.ResetAll();
  EXPECT_EQ(reg.GetCounter("c")->Value(), 0);
  EXPECT_EQ(reg.GetHistogram("h")->Snapshot().count(), 0u);
  // Gauges are owner-refreshed; ResetAll leaves them alone.
  EXPECT_EQ(reg.GetGauge("g")->Value(), 3);
}

TEST(OpTracerTest, DisabledRecordsNothingThroughScopes) {
  OpTracer tracer(/*capacity=*/8);
  ASSERT_FALSE(tracer.enabled());
  { ScopedTrace t(tracer, "cat", "op"); }
  EXPECT_EQ(tracer.total_recorded(), 0u);
  EXPECT_TRUE(tracer.Events().empty());
}

TEST(OpTracerTest, EnabledScopeRecordsOneEvent) {
  OpTracer tracer(/*capacity=*/8);
  tracer.set_enabled(true);
  { ScopedTrace t(tracer, "mvcc", "read"); }
  EXPECT_EQ(tracer.total_recorded(), 1u);
  auto events = tracer.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].category, "mvcc");
  EXPECT_STREQ(events[0].name, "read");
}

TEST(OpTracerTest, RingWrapsKeepingNewestAndCountsDrops) {
  constexpr size_t kCap = 16;
  OpTracer tracer(kCap);
  tracer.set_enabled(true);
  constexpr uint64_t kTotal = 100;
  for (uint64_t i = 0; i < kTotal; ++i) {
    tracer.Record("cat", "op", /*start_ns=*/i, /*dur_ns=*/1);
  }
  EXPECT_EQ(tracer.total_recorded(), kTotal);
  EXPECT_EQ(tracer.dropped(), kTotal - kCap);
  auto events = tracer.Events();
  ASSERT_EQ(events.size(), kCap);
  // Oldest-first ordering over the newest kCap events.
  for (size_t i = 0; i < kCap; ++i) {
    EXPECT_EQ(events[i].start_ns, kTotal - kCap + i);
  }
}

TEST(OpTracerTest, ConcurrentRecordersLoseNothingBelowCapacity) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  OpTracer tracer(kThreads * kPerThread);
  tracer.set_enabled(true);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kPerThread; ++i) {
        ScopedTrace s(tracer, "stress", "op");
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tracer.total_recorded(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.Events().size(), size_t{kThreads} * kPerThread);
}

TEST(OpTracerTest, OverflowBumpsCataloguedDroppedCounter) {
  // Silent trace loss regression: every ring overwrite must surface in the
  // process-wide obs.trace.dropped counter, not just the tracer's own
  // dropped() figure.
  Counter* dropped =
      MetricsRegistry::Default().GetCounter("obs.trace.dropped");
  int64_t before = dropped->Value();
  constexpr size_t kCap = 16;
  constexpr uint64_t kTotal = 100;
  OpTracer tracer(kCap);
  tracer.set_enabled(true);
  for (uint64_t i = 0; i < kTotal; ++i) {
    tracer.Record("cat", "op", /*start_ns=*/i, /*dur_ns=*/1);
  }
  EXPECT_EQ(tracer.dropped(), kTotal - kCap);
  EXPECT_EQ(dropped->Value() - before,
            static_cast<int64_t>(kTotal - kCap));
}

TEST(OpTracerTest, ClearEmptiesRingButKeepsNothingElse) {
  OpTracer tracer(8);
  tracer.set_enabled(true);
  tracer.Record("c", "n", 1, 2);
  tracer.Clear();
  EXPECT_TRUE(tracer.Events().empty());
  EXPECT_TRUE(tracer.enabled());
}

TEST(OpTracerTest, ChromeTraceJsonShape) {
  OpTracer tracer(8);
  tracer.set_enabled(true);
  tracer.Record("wal", "flush", /*start_ns=*/2000, /*dur_ns=*/3000);
  std::string json = tracer.ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"wal\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"flush\""), std::string::npos);
}

TEST(OpTracerTest, TraceOpMacroUsesDefaultTracer) {
  OpTracer& def = OpTracer::Default();
  def.Clear();
  def.set_enabled(true);
  uint64_t before = def.total_recorded();
  { TRACE_OP("test", "macro_scope"); }
  def.set_enabled(false);
  EXPECT_GE(def.total_recorded(), before + 1);
  bool found = false;
  for (const auto& e : def.Events()) {
    if (std::string(e.name) == "macro_scope") found = true;
  }
  EXPECT_TRUE(found);
  def.Clear();
}

}  // namespace
}  // namespace obs
}  // namespace sias
