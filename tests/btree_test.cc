// B+-tree tests: ordering, splits across multiple levels, duplicates,
// deletes, range scans, persistence through the buffer pool and randomized
// property checks against a reference model.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.h"
#include "device/mem_device.h"
#include "index/btree.h"
#include "index/key_codec.h"

namespace sias {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  BTreeTest()
      : device_(1ull << 30), disk_(&device_), pool_(&disk_, 512) {
    EXPECT_TRUE(disk_.CreateRelation(1).ok());
    tree_ = std::make_unique<BTree>(1, &pool_);
    EXPECT_TRUE(tree_->Create(&clk_).ok());
  }

  MemDevice device_;
  DiskManager disk_;
  BufferPool pool_;
  std::unique_ptr<BTree> tree_;
  VirtualClock clk_;
};

TEST_F(BTreeTest, EmptyLookup) {
  auto r = tree_->Lookup(IntKey(42), &clk_);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
  EXPECT_EQ(tree_->size(), 0u);
}

TEST_F(BTreeTest, InsertAndLookup) {
  ASSERT_TRUE(tree_->Insert(IntKey(5), 500, &clk_).ok());
  ASSERT_TRUE(tree_->Insert(IntKey(3), 300, &clk_).ok());
  ASSERT_TRUE(tree_->Insert(IntKey(7), 700, &clk_).ok());
  auto r = tree_->Lookup(IntKey(3), &clk_);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0], 300u);
  EXPECT_EQ(tree_->size(), 3u);
  EXPECT_TRUE(tree_->CheckInvariants(&clk_).ok());
}

TEST_F(BTreeTest, DuplicateKeysAllValuesReturned) {
  for (uint64_t v = 1; v <= 5; ++v) {
    ASSERT_TRUE(tree_->Insert(IntKey(9), v * 10, &clk_).ok());
  }
  auto r = tree_->Lookup(IntKey(9), &clk_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 5u);
  EXPECT_EQ(std::set<uint64_t>(r->begin(), r->end()),
            (std::set<uint64_t>{10, 20, 30, 40, 50}));
}

TEST_F(BTreeTest, ExactPairInsertIsIdempotent) {
  ASSERT_TRUE(tree_->Insert(IntKey(1), 11, &clk_).ok());
  ASSERT_TRUE(tree_->Insert(IntKey(1), 11, &clk_).ok());
  EXPECT_EQ(tree_->size(), 1u);
}

TEST_F(BTreeTest, DeleteExactPair) {
  ASSERT_TRUE(tree_->Insert(IntKey(1), 11, &clk_).ok());
  ASSERT_TRUE(tree_->Insert(IntKey(1), 12, &clk_).ok());
  ASSERT_TRUE(tree_->Delete(IntKey(1), 11, &clk_).ok());
  auto r = tree_->Lookup(IntKey(1), &clk_);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0], 12u);
  EXPECT_TRUE(tree_->Delete(IntKey(1), 11, &clk_).IsNotFound());
  EXPECT_TRUE(tree_->Delete(IntKey(99), 1, &clk_).IsNotFound());
}

TEST_F(BTreeTest, SplitsGrowTheTree) {
  // Enough sequential entries to force multiple leaf and internal splits.
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(tree_->Insert(IntKey(i), static_cast<uint64_t>(i), &clk_).ok());
  }
  EXPECT_EQ(tree_->size(), static_cast<uint64_t>(kN));
  EXPECT_GE(tree_->height(), 2u);
  EXPECT_TRUE(tree_->CheckInvariants(&clk_).ok());
  for (int i = 0; i < kN; i += 101) {
    auto r = tree_->Lookup(IntKey(i), &clk_);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->size(), 1u) << i;
    EXPECT_EQ((*r)[0], static_cast<uint64_t>(i));
  }
}

TEST_F(BTreeTest, ReverseInsertionOrder) {
  constexpr int kN = 2000;
  for (int i = kN - 1; i >= 0; --i) {
    ASSERT_TRUE(tree_->Insert(IntKey(i), static_cast<uint64_t>(i), &clk_).ok());
  }
  EXPECT_TRUE(tree_->CheckInvariants(&clk_).ok());
  int count = 0;
  int expect = 0;
  ASSERT_TRUE(tree_
                  ->Range(IntKey(0), Slice(), &clk_,
                          [&](Slice, uint64_t v) {
                            EXPECT_EQ(v, static_cast<uint64_t>(expect++));
                            count++;
                            return true;
                          })
                  .ok());
  EXPECT_EQ(count, kN);
}

TEST_F(BTreeTest, RangeScanBounds) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree_->Insert(IntKey(i), static_cast<uint64_t>(i), &clk_).ok());
  }
  std::vector<uint64_t> got;
  ASSERT_TRUE(tree_
                  ->Range(IntKey(10), IntKey(20), &clk_,
                          [&](Slice, uint64_t v) {
                            got.push_back(v);
                            return true;
                          })
                  .ok());
  ASSERT_EQ(got.size(), 10u);
  EXPECT_EQ(got.front(), 10u);
  EXPECT_EQ(got.back(), 19u);
}

TEST_F(BTreeTest, RangeEarlyStop) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree_->Insert(IntKey(i), static_cast<uint64_t>(i), &clk_).ok());
  }
  int count = 0;
  ASSERT_TRUE(tree_->Range(IntKey(0), Slice(), &clk_, [&](Slice, uint64_t) {
    return ++count < 5;
  }).ok());
  EXPECT_EQ(count, 5);
}

TEST_F(BTreeTest, CompositeStringKeysOrderCorrectly) {
  auto key = [](int w, const std::string& last) {
    return KeyBuilder().AddInt(w).AddString(last).Take();
  };
  ASSERT_TRUE(tree_->Insert(key(1, "SMITH"), 1, &clk_).ok());
  ASSERT_TRUE(tree_->Insert(key(1, "SMITHSON"), 2, &clk_).ok());
  ASSERT_TRUE(tree_->Insert(key(2, "ADAMS"), 3, &clk_).ok());
  ASSERT_TRUE(tree_->Insert(key(1, "ADAMS"), 4, &clk_).ok());
  std::vector<uint64_t> order;
  ASSERT_TRUE(tree_->Range(key(1, ""), Slice(), &clk_,
                           [&](Slice, uint64_t v) {
                             order.push_back(v);
                             return true;
                           })
                  .ok());
  // (1,ADAMS) < (1,SMITH) < (1,SMITHSON) < (2,ADAMS)
  EXPECT_EQ(order, (std::vector<uint64_t>{4, 1, 2, 3}));
  // Exact lookup does not confuse SMITH with SMITHSON.
  auto r = tree_->Lookup(key(1, "SMITH"), &clk_);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0], 1u);
}

TEST_F(BTreeTest, KeyTooLongRejected) {
  std::string long_key(BTree::kMaxKeyLen + 1, 'k');
  EXPECT_FALSE(tree_->Insert(Slice(long_key), 1, &clk_).ok());
}

TEST_F(BTreeTest, ManyDuplicatesAcrossLeafSplits) {
  // 1000 entries under ten keys forces duplicate runs to span leaves.
  for (int k = 0; k < 10; ++k) {
    for (uint64_t v = 0; v < 100; ++v) {
      ASSERT_TRUE(tree_->Insert(IntKey(k), k * 1000 + v, &clk_).ok());
    }
  }
  EXPECT_TRUE(tree_->CheckInvariants(&clk_).ok());
  for (int k = 0; k < 10; ++k) {
    auto r = tree_->Lookup(IntKey(k), &clk_);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->size(), 100u) << "key " << k;
  }
}

TEST(BTreeLookupMultiTest, MatchesSequentialLookups) {
  // The batched resumable-probe path must return exactly what a Lookup()
  // loop returns, per input slot — including duplicate runs, misses, and
  // repeated keys in one batch. A 16-frame pool under a multi-level tree
  // forces cold-page suspends mid-descent, so the state-machine resume path
  // is actually exercised (with read latency so in-flight fetches overlap).
  MemDevice device(1ull << 30, /*read_latency=*/50, /*write_latency=*/50);
  DiskManager disk(&device);
  ASSERT_TRUE(disk.CreateRelation(1).ok());
  BufferPool pool(&disk, 16);
  BTree tree(1, &pool);
  VirtualClock clk;
  ASSERT_TRUE(tree.Create(&clk).ok());
  for (int64_t k = 0; k < 2000; ++k) {
    ASSERT_TRUE(tree.Insert(IntKey(k * 3), k, &clk).ok());
    if (k % 11 == 0) {  // duplicate runs
      ASSERT_TRUE(tree.Insert(IntKey(k * 3), k + 100000, &clk).ok());
    }
  }
  ASSERT_GE(tree.height(), 2u) << "the probe must descend through inner "
                                  "pages for suspends to occur";

  std::vector<std::string> keys;
  for (int64_t k = 5990; k >= 0; k -= 7) keys.push_back(IntKey(k));
  keys.push_back(IntKey(3));  // repeated key
  keys.push_back(IntKey(999999));  // guaranteed miss

  for (size_t depth : {size_t{1}, size_t{4}, size_t{8}}) {
    auto multi = tree.LookupMulti(keys, depth, &clk);
    ASSERT_TRUE(multi.ok()) << multi.status().ToString();
    ASSERT_EQ(multi->size(), keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      auto single = tree.Lookup(keys[i], &clk);
      ASSERT_TRUE(single.ok());
      EXPECT_EQ((*multi)[i], *single) << "slot " << i << " depth " << depth;
    }
  }
}

// Randomized model check, parameterized over operation mixes.
class BTreeRandomTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BTreeRandomTest, MatchesReferenceModel) {
  auto [seed, ops] = GetParam();
  MemDevice device(1ull << 30);
  DiskManager disk(&device);
  ASSERT_TRUE(disk.CreateRelation(1).ok());
  BufferPool pool(&disk, 256);
  BTree tree(1, &pool);
  VirtualClock clk;
  ASSERT_TRUE(tree.Create(&clk).ok());

  Random rng(seed);
  std::set<std::pair<int64_t, uint64_t>> model;
  for (int i = 0; i < ops; ++i) {
    int64_t k = rng.UniformInt(0, 300);
    uint64_t v = rng.Uniform(0, 3);
    if (rng.OneIn(3) && !model.empty()) {
      // Delete a random existing pair half the time, a random pair else.
      if (rng.OneIn(2)) {
        auto it = model.lower_bound({k, v});
        if (it == model.end()) it = model.begin();
        ASSERT_TRUE(tree.Delete(IntKey(it->first), it->second, &clk).ok());
        model.erase(it);
      } else {
        Status s = tree.Delete(IntKey(k), v, &clk);
        bool existed = model.erase({k, v}) > 0;
        EXPECT_EQ(s.ok(), existed);
      }
    } else {
      ASSERT_TRUE(tree.Insert(IntKey(k), v, &clk).ok());
      model.insert({k, v});
    }
  }
  ASSERT_TRUE(tree.CheckInvariants(&clk).ok());
  EXPECT_EQ(tree.size(), model.size());
  // Full scan must equal the model exactly.
  std::vector<std::pair<std::string, uint64_t>> scanned;
  ASSERT_TRUE(tree.Range(IntKey(-1000), Slice(), &clk,
                         [&](Slice key, uint64_t v) {
                           scanned.emplace_back(key.ToString(), v);
                           return true;
                         })
                  .ok());
  ASSERT_EQ(scanned.size(), model.size());
  size_t i = 0;
  for (const auto& [k, v] : model) {
    EXPECT_EQ(scanned[i].first, IntKey(k));
    EXPECT_EQ(scanned[i].second, v);
    i++;
  }
}

INSTANTIATE_TEST_SUITE_P(Mixes, BTreeRandomTest,
                         ::testing::Values(std::make_tuple(1, 500),
                                           std::make_tuple(2, 2000),
                                           std::make_tuple(3, 5000),
                                           std::make_tuple(4, 8000)));

// Oracle check for the batched resumable range scan: ScanMulti over random
// ranges must deliver, per range, exactly what a sequential Range() loop
// delivers — under a pool small enough that scans genuinely suspend on cold
// pages and overlap their reads.
TEST(BTreeScanMultiTest, MatchesSequentialRangeOracle) {
  MemDevice device(1ull << 30);
  DiskManager disk(&device);
  ASSERT_TRUE(disk.CreateRelation(1).ok());
  // 32 frames vs a ~200-page tree: most leaf fetches miss.
  BufferPool pool(&disk, 32);
  BTree tree(1, &pool);
  VirtualClock clk;
  ASSERT_TRUE(tree.Create(&clk).ok());

  Random rng(7);
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(
        tree.Insert(IntKey(rng.UniformInt(0, 100000)), rng.Uniform(0, 4),
                    &clk)
            .ok());
  }

  std::vector<BTree::ScanRange> ranges;
  for (int i = 0; i < 40; ++i) {
    int64_t lo = rng.UniformInt(0, 100000);
    int64_t hi = lo + rng.UniformInt(0, 5000);
    BTree::ScanRange r;
    r.lo = IntKey(lo);
    r.hi = rng.OneIn(8) ? std::string() : IntKey(hi);  // some unbounded
    ranges.push_back(std::move(r));
  }

  // Oracle: one sequential Range per range.
  std::vector<std::vector<std::pair<std::string, uint64_t>>> expected(
      ranges.size());
  for (size_t i = 0; i < ranges.size(); ++i) {
    ASSERT_TRUE(tree.Range(Slice(ranges[i].lo), Slice(ranges[i].hi), &clk,
                           [&](Slice k, uint64_t v) {
                             expected[i].emplace_back(k.ToString(), v);
                             return true;
                           })
                    .ok());
  }

  for (size_t io_depth : {2, 4, 8}) {
    std::vector<std::vector<std::pair<std::string, uint64_t>>> got(
        ranges.size());
    ASSERT_TRUE(tree.ScanMulti(ranges, io_depth, &clk,
                               [&](size_t r, Slice k, uint64_t v) {
                                 got[r].emplace_back(k.ToString(), v);
                                 return true;
                               })
                    .ok());
    EXPECT_EQ(got, expected) << "io_depth=" << io_depth;
  }

  // Early-stop: a callback returning false ends only that range's scan.
  std::vector<size_t> counts(ranges.size(), 0);
  ASSERT_TRUE(tree.ScanMulti(ranges, 4, &clk,
                             [&](size_t r, Slice, uint64_t) {
                               counts[r]++;
                               return counts[r] < 5;
                             })
                  .ok());
  for (size_t i = 0; i < ranges.size(); ++i) {
    EXPECT_EQ(counts[i], std::min<size_t>(expected[i].size(), 5));
  }
}

}  // namespace
}  // namespace sias
