// Shared wiring for MVCC-layer tests: device + disk + pool + txn machinery,
// and a factory producing a table of any version scheme.
#pragma once

#include <memory>

#include "buffer/buffer_pool.h"
#include "core/sias_table.h"
#include "device/mem_device.h"
#include "mvcc/mvcc_table.h"
#include "mvcc/si_heap.h"
#include "storage/disk_manager.h"
#include "txn/clog.h"
#include "txn/lock_manager.h"
#include "txn/txn_manager.h"
#include "wal/wal.h"

namespace sias {

/// Self-contained mini engine for tests.
class TestEnv {
 public:
  explicit TestEnv(size_t pool_frames = 256, bool with_wal = true,
                   int lock_timeout_ms = 200)
      : device_(1ull << 30),
        wal_device_(1ull << 30),
        disk_(&device_),
        pool_(&disk_, pool_frames,
              [this](Lsn lsn, VirtualClock* clk) {
                return wal_ ? wal_->FlushTo(lsn, clk) : Status::OK();
              }),
        locks_(lock_timeout_ms),
        txns_(&clog_, &locks_) {
    if (with_wal) {
      wal_ = std::make_unique<WalWriter>(&wal_device_, 0, 1ull << 30);
    }
  }

  std::unique_ptr<MvccTable> MakeTable(VersionScheme scheme,
                                       RelationId relation) {
    EXPECT_TRUE(disk_.CreateRelation(relation).ok());
    TableEnv env{&pool_, &txns_, wal_.get()};
    if (scheme == VersionScheme::kSi) {
      return std::make_unique<SiHeap>(relation, env);
    }
    return std::make_unique<SiasTable>(relation, env, scheme);
  }

  MemDevice device_;
  MemDevice wal_device_;
  DiskManager disk_;
  BufferPool pool_;
  Clog clog_;
  LockManager locks_;
  TransactionManager txns_;
  std::unique_ptr<WalWriter> wal_;
};

}  // namespace sias
