// Unit tests for the buffer pool: fetch/new, pinning, eviction, dirty
// write-back, sticky (append-region) frames and WAL-before-data hook.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "buffer/buffer_pool.h"
#include "device/mem_device.h"
#include "storage/disk_manager.h"

namespace sias {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  static constexpr size_t kFrames = 16;

  BufferPoolTest()
      : device_(256ull << 20),
        disk_(&device_),
        pool_(&disk_, kFrames) {
    EXPECT_TRUE(disk_.CreateRelation(1).ok());
  }

  MemDevice device_;
  DiskManager disk_;
  BufferPool pool_;
  VirtualClock clk_;
};

TEST_F(BufferPoolTest, NewPageIsInitialized) {
  auto g = pool_.NewPage(1, &clk_);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->id().relation, 1u);
  EXPECT_EQ(g->id().page, 0u);
  SlottedPage sp = g->page();
  EXPECT_EQ(sp.header()->relation, 1u);
  EXPECT_EQ(sp.slot_count(), 0u);
}

TEST_F(BufferPoolTest, FetchHitDoesNotTouchDevice) {
  auto g = pool_.NewPage(1, &clk_);
  ASSERT_TRUE(g.ok());
  PageId id = g->id();
  g->Release();
  uint64_t reads_before = device_.stats().read_ops;
  auto g2 = pool_.FetchPage(id, &clk_);
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(device_.stats().read_ops, reads_before);
  EXPECT_GE(pool_.stats().hits, 1u);
}

TEST_F(BufferPoolTest, DataSurvivesEviction) {
  PageId first;
  {
    auto g = pool_.NewPage(1, &clk_);
    ASSERT_TRUE(g.ok());
    first = g->id();
    g->LatchExclusive();
    g->page().InsertTuple(Slice("persist me"));
    g->MarkDirty();
    g->Unlatch();
  }
  // Blow the pool with other pages to force eviction of `first`.
  for (size_t i = 0; i < kFrames * 3; ++i) {
    auto g = pool_.NewPage(1, &clk_);
    ASSERT_TRUE(g.ok());
  }
  auto g = pool_.FetchPage(first, &clk_);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->page().GetTuple(0).ToString(), "persist me");
  EXPECT_GT(pool_.stats().evictions, 0u);
  EXPECT_GT(pool_.stats().flushes_by_source[static_cast<int>(
                FlushSource::kEviction)],
            0u);
}

TEST_F(BufferPoolTest, PinnedPagesAreNotEvicted) {
  std::vector<PageGuard> guards;
  for (size_t i = 0; i < kFrames; ++i) {
    auto g = pool_.NewPage(1, &clk_);
    ASSERT_TRUE(g.ok());
    guards.push_back(std::move(*g));
  }
  // All frames pinned: next allocation must fail, not evict.
  auto g = pool_.NewPage(1, &clk_);
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kOutOfSpace);
  guards.clear();
  auto g2 = pool_.NewPage(1, &clk_);
  EXPECT_TRUE(g2.ok());
}

TEST_F(BufferPoolTest, StickyFramesSurviveEvictionPressure) {
  PageId sticky_id;
  {
    auto g = pool_.NewPage(1, &clk_);
    ASSERT_TRUE(g.ok());
    sticky_id = g->id();
    g->LatchExclusive();
    g->page().InsertTuple(Slice("append-region"));
    g->MarkDirty();
    g->Unlatch();
  }
  ASSERT_TRUE(pool_.SetSticky(sticky_id, true).ok());
  uint64_t writes_before = device_.stats().write_ops;
  for (size_t i = 0; i < kFrames * 3; ++i) {
    auto g = pool_.NewPage(1, &clk_);
    ASSERT_TRUE(g.ok());
  }
  // The sticky page must still be resident (fetch = hit, no device read) and
  // must never have been written out by eviction.
  uint64_t reads_before = device_.stats().read_ops;
  auto g = pool_.FetchPage(sticky_id, &clk_);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(device_.stats().read_ops, reads_before);
  EXPECT_EQ(g->page().GetTuple(0).ToString(), "append-region");
  (void)writes_before;
  ASSERT_TRUE(pool_.SetSticky(sticky_id, false).ok());
}

TEST_F(BufferPoolTest, FlushAllWritesEveryDirtyPage) {
  for (int i = 0; i < 5; ++i) {
    auto g = pool_.NewPage(1, &clk_);
    ASSERT_TRUE(g.ok());
    g->MarkDirty();
  }
  EXPECT_EQ(pool_.DirtyPages().size(), 5u);
  ASSERT_TRUE(pool_.FlushAll(&clk_).ok());
  EXPECT_EQ(pool_.DirtyPages().size(), 0u);
  EXPECT_EQ(device_.stats().write_ops, 5u);
  EXPECT_EQ(pool_.stats().flushes_by_source[static_cast<int>(
                FlushSource::kCheckpoint)],
            5u);
}

TEST_F(BufferPoolTest, FlushPageIsIdempotent) {
  auto g = pool_.NewPage(1, &clk_);
  ASSERT_TRUE(g.ok());
  PageId id = g->id();
  g->MarkDirty();
  g->Release();
  ASSERT_TRUE(pool_.FlushPage(id, &clk_).ok());
  uint64_t writes = device_.stats().write_ops;
  ASSERT_TRUE(pool_.FlushPage(id, &clk_).ok());  // clean now: no-op
  EXPECT_EQ(device_.stats().write_ops, writes);
}

TEST_F(BufferPoolTest, WalHookRunsBeforeDataWrite) {
  Lsn flushed_to = 0;
  BufferPool pool(&disk_, kFrames, [&](Lsn lsn, VirtualClock*) {
    flushed_to = std::max(flushed_to, lsn);
    return Status::OK();
  });
  auto g = pool.NewPage(1, &clk_);
  ASSERT_TRUE(g.ok());
  g->MarkDirty(/*lsn=*/777);
  PageId id = g->id();
  g->Release();
  ASSERT_TRUE(pool.FlushPage(id, &clk_).ok());
  EXPECT_EQ(flushed_to, 777u);
}

TEST_F(BufferPoolTest, ChecksumWrittenOnFlushVerifiedOnFetch) {
  auto g = pool_.NewPage(1, &clk_);
  ASSERT_TRUE(g.ok());
  PageId id = g->id();
  g->page().InsertTuple(Slice("checked"));
  g->MarkDirty();
  g->Release();
  ASSERT_TRUE(pool_.FlushPage(id, &clk_).ok());
  // Corrupt the page on the device; a later fetch must detect it.
  for (size_t i = 0; i < kFrames * 3; ++i) {
    auto p = pool_.NewPage(1, &clk_);
    ASSERT_TRUE(p.ok());
  }
  uint64_t offset = *disk_.PageOffset(id.relation, id.page);
  std::vector<uint8_t> raw(kPageSize);
  ASSERT_TRUE(device_.Read(offset, kPageSize, raw.data(), nullptr).ok());
  raw[4000] ^= 1;
  ASSERT_TRUE(device_.Write(offset, kPageSize, raw.data(), nullptr).ok());
  auto fetched = pool_.FetchPage(id, &clk_);
  ASSERT_FALSE(fetched.ok());
  EXPECT_EQ(fetched.status().code(), StatusCode::kCorruption);
}

TEST_F(BufferPoolTest, ConcurrentFetchesAreSafe) {
  PageId id;
  {
    auto g = pool_.NewPage(1, &clk_);
    ASSERT_TRUE(g.ok());
    id = g->id();
    g->LatchExclusive();
    g->page().InsertTuple(Slice("shared"));
    g->MarkDirty();
    g->Unlatch();
  }
  std::vector<std::thread> threads;
  std::atomic<int> ok_count{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      VirtualClock clk;
      for (int i = 0; i < 500; ++i) {
        auto g = pool_.FetchPage(id, &clk);
        if (!g.ok()) continue;
        g->LatchShared();
        if (g->page().GetTuple(0).ToString() == "shared") ok_count++;
        g->Unlatch();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ok_count.load(), 2000);
}

}  // namespace
}  // namespace sias
