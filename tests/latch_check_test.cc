// Tests for the debug-build latch-order validator (src/check/latch_order)
// and the SpinLatch backoff/AssertHeld additions.
//
// The death tests seed real discipline violations (rank inversion,
// same-rank nesting, re-acquisition, an unranked ABBA cycle) and assert the
// checker aborts deterministically — the property that distinguishes it
// from TSan's interleaving-dependent deadlock detection. The documentation
// test pins the global rank table against every acquired-while-held pair
// the engine actually executes (the sequences tests/concurrency_test.cc
// drives), so reordering the table without updating the discipline is a
// test failure, not a runtime surprise.

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "check/latch_order.h"
#include "common/latch.h"

namespace sias {
namespace {

// The global acquisition order must follow the paper's latch nesting:
// tree < heap/index page < clog/bucket-dir growth. (kVidMapSlot is retired
// — VidMapV reads are epoch-protected RCU now — but its slot in the order
// is pinned so reintroducing a slot latch lands in the right place.)
static_assert(LatchRank::kBTree < LatchRank::kPage);
static_assert(LatchRank::kPage < LatchRank::kVidMapSlot);
static_assert(LatchRank::kVidMapSlot < LatchRank::kBucketDir);
// The epoch queue sits above the storage ranks its deferred callbacks
// re-enter (they run outside the queue mutex) and below the stats leaves.
static_assert(LatchRank::kDeviceStore < LatchRank::kEpochQueue);
static_assert(LatchRank::kEpochQueue < LatchRank::kStats);

#if defined(SIAS_LATCH_CHECK)

TEST(SpinLatchTest, TryLockAndAssertHeld) {
  SpinLatch latch;
  ASSERT_TRUE(latch.TryLock());
  latch.AssertHeld();  // must not abort
  EXPECT_FALSE(latch.TryLock());
  latch.Unlock();
  ASSERT_TRUE(latch.TryLock());
  latch.Unlock();
}

TEST(SpinLatchTest, ContendedBackoffStillExcludes) {
  SpinLatch latch;
  int counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        SpinLatchGuard g(latch);
        counter++;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(LatchCheckTest, HeldCountTracksGuards) {
  EXPECT_EQ(check::HeldCount(), 0u);
  Mutex a;
  SpinLatch b;
  {
    MutexLock ga(&a);
    EXPECT_EQ(check::HeldCount(), 1u);
    {
      SpinLatchGuard gb(b);
      EXPECT_EQ(check::HeldCount(), 2u);
      EXPECT_TRUE(check::IsHeld(&a));
      EXPECT_TRUE(check::IsHeld(&b));
    }
    EXPECT_EQ(check::HeldCount(), 1u);
  }
  EXPECT_EQ(check::HeldCount(), 0u);
  EXPECT_FALSE(check::IsHeld(&a));
}

TEST(LatchCheckTest, AscendingRanksAreAdmitted) {
  Mutex outer(LatchRank::kBTree);
  Mutex inner(LatchRank::kWal);
  MutexLock g1(&outer);
  MutexLock g2(&inner);  // higher rank inside lower: fine
  SUCCEED();
}

TEST(LatchCheckTest, TryAcquireIsExemptFromOrdering) {
  Mutex high(LatchRank::kWal);
  Mutex low(LatchRank::kBTree);
  MutexLock g(&high);
  // A blocking acquire of `low` here would abort; a try-acquire cannot
  // block, so the checker admits it (the buffer pool's page-latch tries
  // under the pool mutex rely on this).
  ASSERT_TRUE(low.TryLock());
  low.Unlock();
}

TEST(LatchCheckTest, SameRankPageNestingAllowed) {
  // kPage is the one rank that may nest itself (B+-tree splits latch
  // several pages under the exclusive tree latch).
  EXPECT_TRUE(check::RankAllowsSameRankNesting(LatchRank::kPage));
  EXPECT_FALSE(check::RankAllowsSameRankNesting(LatchRank::kBTree));
  PageLatch a;
  PageLatch b;
  a.Lock();
  b.Lock();  // same rank kPage: admitted
  a.AssertHeld();
  b.AssertHeld();
  b.Unlock();
  a.Unlock();
}

using LatchCheckDeathTest = ::testing::Test;

TEST(LatchCheckDeathTest, RankInversionAbortsDeterministically) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Acquire kWal then kBTree — the inverse of the documented order. This
  // must abort on the FIRST occurrence, with no second thread needed.
  EXPECT_DEATH(
      {
        Mutex wal(LatchRank::kWal);
        Mutex tree(LatchRank::kBTree);
        MutexLock g1(&wal);
        MutexLock g2(&tree);
      },
      "rank inversion");
}

TEST(LatchCheckDeathTest, SameRankNestingAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex a(LatchRank::kWal);
        Mutex b(LatchRank::kWal);
        MutexLock g1(&a);
        MutexLock g2(&b);
      },
      "same-rank nesting");
}

TEST(LatchCheckDeathTest, ReacquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SpinLatch latch(LatchRank::kVidMapSlot);
        latch.Lock();
        latch.Lock();  // self-deadlock; checker aborts instead of hanging
      },
      "re-acquisition");
}

TEST(LatchCheckDeathTest, UnrankedAbbaCycleAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Unranked latches are exempt from the rank rule but tracked in the
  // instance-level acquired-before graph: A->B then B->A closes a cycle.
  EXPECT_DEATH(
      {
        Mutex a;
        Mutex b;
        {
          MutexLock ga(&a);
          MutexLock gb(&b);
        }
        MutexLock gb(&b);
        MutexLock ga(&a);
      },
      "cycle");
}

TEST(LatchCheckTest, EpochDepthTracksEnterExit) {
  EXPECT_EQ(check::EpochDepth(), 0u);
  check::OnEpochEnter();
  EXPECT_EQ(check::EpochDepth(), 1u);
  check::OnEpochEnter();  // nesting is allowed and counted
  EXPECT_EQ(check::EpochDepth(), 2u);
  check::OnEpochExit();
  check::OnEpochExit();
  EXPECT_EQ(check::EpochDepth(), 0u);
}

TEST(LatchCheckTest, EpochEntryAllowedAboveStorageLayer) {
  // Holding latches that rank BELOW kPage (coarse engine structures) is
  // fine: the deferred-free callbacks never take those.
  Mutex txn(LatchRank::kTxnManager);
  MutexLock g(&txn);
  check::OnEpochEnter();
  check::OnEpochExit();
  SUCCEED();
}

TEST(LatchCheckTest, EpochEntryExemptsTryAcquiredPageLatch) {
  // Try-acquisitions cannot block and are exempt from the rank rule; the
  // epoch rule mirrors that exemption.
  PageLatch page;
  ASSERT_TRUE(page.TryLockShared());
  check::OnEpochEnter();
  check::OnEpochExit();
  page.UnlockShared();
  SUCCEED();
}

TEST(LatchCheckDeathTest, EpochEntryUnderPageLatchAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Entering an epoch while holding a storage-layer latch (rank >= kPage,
  // blocking-acquired) inverts the epoch discipline: the deferred-free
  // callbacks acquire exactly those latches when they run.
  EXPECT_DEATH(
      {
        PageLatch page;
        page.Lock();
        check::OnEpochEnter();
      },
      "epoch entered under a storage-layer latch");
}

TEST(LatchCheckDeathTest, EpochExitWithoutEnterAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH({ check::OnEpochExit(); }, "epoch exit");
}

TEST(LatchCheckDeathTest, AssertHeldAbortsWhenNotHeld) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SpinLatch latch;
        latch.AssertHeld();
      },
      "AssertHeld");
}

// ---------------------------------------------------------------------------
// Rank-table documentation test: every acquired-while-held pair the engine
// executes (the sequences driven by tests/concurrency_test.cc — appends,
// index maintenance, GC, bgwriter/checkpoint passes, commits, recovery).
// If a refactor reorders the rank table, this enumerates exactly which real
// nesting broke.

struct EngineEdge {
  const char* where;
  LatchRank held;
  LatchRank acquired;
  bool try_only;  // acquisition is try-only at this site
};

constexpr EngineEdge kEngineEdges[] = {
    // Maintenance: BgWriterPass / StartPacedCheckpoint walk the catalog and
    // seal append regions while holding maintenance_mu_.
    {"Database::BgWriterPass", LatchRank::kDbMaintenance,
     LatchRank::kDbCatalog, false},
    {"Database::BgWriterPass seal", LatchRank::kDbCatalog,
     LatchRank::kAppendRegion, false},
    {"AppendRegion::SealOpenPage", LatchRank::kAppendRegion,
     LatchRank::kBufferPool, false},
    // Transaction begin allocates an xid, then extends the clog directory.
    {"TransactionManager::Begin", LatchRank::kTxnManager,
     LatchRank::kBucketDir, false},
    // Index maintenance: the tree latch wraps page fetches (pool mutex) and
    // page latches; splits nest further page latches (same rank).
    {"BTree::Insert", LatchRank::kBTree, LatchRank::kBufferPool, false},
    {"BTree::Insert", LatchRank::kBTree, LatchRank::kPage, false},
    {"BTree::SplitAndInsert", LatchRank::kPage, LatchRank::kBufferPool,
     false},
    {"BTree::SplitAndInsert sibling", LatchRank::kPage, LatchRank::kPage,
     false},
    // Appends: the region mutex wraps the page fill; the latched page logs
    // to the WAL; the VidMap slot is updated under the page latch.
    {"AppendRegion::Append", LatchRank::kAppendRegion, LatchRank::kBufferPool,
     false},
    {"AppendRegion::Append", LatchRank::kAppendRegion, LatchRank::kPage,
     false},
    {"AppendRegion::Append wal", LatchRank::kPage, LatchRank::kWal, false},
    // VidMapV installs/reads are latch-free (RCU + epochs); only bucket
    // directory growth still locks, and it nests under nothing ranked.
    // Retiring superseded vectors enqueues under the epoch-queue mutex.
    {"VidMapV::Install retire", LatchRank::kUnranked, LatchRank::kEpochQueue,
     false},
    // SI heap: placement and GC nest the FSM / locator map inside the page
    // latch; the WAL append happens under the page latch too.
    {"SiHeap::PlaceTuple", LatchRank::kPage, LatchRank::kSiHeapFsm, false},
    {"SiHeap::PlaceTuple wal", LatchRank::kPage, LatchRank::kWal, false},
    {"SiHeap::GarbageCollect", LatchRank::kPage, LatchRank::kSiHeapMap,
     false},
    // Buffer pool: flush paths try-latch pages and call the WAL-flush hook
    // and the disk manager under the pool mutex.
    {"BufferPool::WriteFrame", LatchRank::kBufferPool, LatchRank::kPage,
     true},
    {"BufferPool::WriteFrame wal hook", LatchRank::kBufferPool,
     LatchRank::kWal, false},
    {"BufferPool::WriteFrame write", LatchRank::kBufferPool, LatchRank::kDisk,
     false},
    // WAL flush writes blocks through the device stack.
    {"WalWriter::FlushTo", LatchRank::kWal, LatchRank::kDevice, false},
    // Async I/O: the deferred FIFO executes queued requests through the
    // fault decorator's write cache and on into the device; the base
    // device records each completion (and its lag histogram) under the
    // completion-table mutex.
    {"FaultyDevice::ExecuteThrough", LatchRank::kIoQueue,
     LatchRank::kFaultyDevice, false},
    {"FaultyDevice::ExecuteThrough device", LatchRank::kIoQueue,
     LatchRank::kDevice, false},
    {"FaultyDevice::ExecuteThrough completion", LatchRank::kIoQueue,
     LatchRank::kIoCompletion, false},
    {"StorageDevice::Poll lag", LatchRank::kIoCompletion, LatchRank::kMetrics,
     false},
    {"FlashSsd::Write", LatchRank::kDevice, LatchRank::kDeviceCalendar,
     false},
    // Devices record I/O into trace/stats leaves and the payload store.
    {"StorageDevice trace", LatchRank::kDevice, LatchRank::kStats, false},
    {"FlashSsd store", LatchRank::kDevice, LatchRank::kDeviceStore, false},
    // Metrics: the registry snapshot merges histogram shards; the sampler
    // snapshots the registry while holding its ring mutex.
    {"MetricsRegistry::Snapshot", LatchRank::kMetricsRegistry,
     LatchRank::kMetrics, false},
    {"MetricsSampler::Capture", LatchRank::kMetricsSampler,
     LatchRank::kMetricsRegistry, false},
};

TEST(LatchCheckTest, DocumentedRankOrderAdmitsEngineSequences) {
  for (const EngineEdge& e : kEngineEdges) {
    if (e.try_only) continue;  // try-acquires are exempt by design
    bool admitted =
        e.held < e.acquired ||
        (e.held == e.acquired && check::RankAllowsSameRankNesting(e.held));
    EXPECT_TRUE(admitted) << e.where << ": acquiring "
                          << check::LatchRankName(e.acquired)
                          << " while holding "
                          << check::LatchRankName(e.held);
  }
}

#else  // !SIAS_LATCH_CHECK

TEST(LatchCheckTest, DisabledInThisBuild) {
  GTEST_SKIP() << "latch-order validator is compiled out "
                  "(configure with -DSIAS_LATCH_CHECK=ON or a Debug/"
                  "sanitizer build)";
}

#endif  // SIAS_LATCH_CHECK

}  // namespace
}  // namespace sias
