// Tests for the YCSB workload module: Zipfian distribution, loader, and
// the runner's correctness under all three version schemes.
#include <gtest/gtest.h>

#include <map>

#include "device/mem_device.h"
#include "workload/ycsb.h"

namespace sias {
namespace ycsb {
namespace {

TEST(ZipfianTest, InRangeAndSkewed) {
  Random rng(5);
  ZipfianGenerator zipf(1000, 0.99);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = zipf.Next(rng);
    ASSERT_LT(v, 1000u);
    counts[v]++;
  }
  // The head must be much hotter than the tail: the top item should get
  // far more than the uniform share (20 hits).
  int max_count = 0;
  for (auto& [k, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 400);
  // And a large fraction of keys drawn at least once (not degenerate).
  EXPECT_GT(counts.size(), 200u);
}

TEST(ZipfianTest, ThetaZeroIsNearUniform) {
  Random rng(5);
  ZipfianGenerator zipf(100, 0.01);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) counts[zipf.Next(rng)]++;
  int max_count = 0;
  for (auto& [k, c] : counts) max_count = std::max(max_count, c);
  EXPECT_LT(max_count, 3 * 20000 / 100);  // within 3x of uniform share
}

class YcsbTest : public ::testing::TestWithParam<VersionScheme> {
 protected:
  void SetUp() override {
    data_ = std::make_unique<MemDevice>(1ull << 30);
    wal_ = std::make_unique<MemDevice>(1ull << 30);
    DatabaseOptions opts;
    opts.data_device = data_.get();
    opts.wal_device = wal_.get();
    opts.pool_frames = 512;
    opts.lock_timeout_ms = 200;
    auto db = Database::Open(opts);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    auto table = YcsbRunner::CreateTable(db_.get(), GetParam());
    ASSERT_TRUE(table.ok());
    table_ = *table;
  }

  std::unique_ptr<MemDevice> data_, wal_;
  std::unique_ptr<Database> db_;
  Table* table_ = nullptr;
};

TEST_P(YcsbTest, LoadAndMixedRun) {
  YcsbConfig cfg;
  cfg.records = 500;
  cfg.operations = 2000;
  cfg.read_pct = 45;
  cfg.update_pct = 45;
  cfg.insert_pct = 5;
  cfg.scan_pct = 5;
  cfg.threads = 2;
  YcsbRunner runner(db_.get(), table_, cfg);
  VirtualClock clk;
  ASSERT_TRUE(runner.Load(&clk).ok());

  auto result = runner.Run(clk.now());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->errors, 0u) << result->first_error.ToString();
  uint64_t total = 0;
  for (uint64_t c : result->completed) total += c;
  EXPECT_GT(total, cfg.operations * 9 / 10);  // few conflicts allowed
  EXPECT_GT(result->OpsPerVSecond(), 0.0);

  // Every loaded key still resolvable; inserts appended beyond the range.
  VirtualClock check_clk(clk.now() + result->makespan);
  auto txn = db_->Begin(&check_clk);
  int count = 0;
  ASSERT_TRUE(table_->Scan(txn.get(), [&](Vid, const Row&) {
    count++;
    return true;
  }).ok());
  EXPECT_GE(count, static_cast<int>(cfg.records));
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
}

TEST_P(YcsbTest, UpdateOnlyMixStressesInvalidation) {
  YcsbConfig cfg;
  cfg.records = 200;
  cfg.operations = 1500;
  cfg.read_pct = 0;
  cfg.update_pct = 100;
  cfg.threads = 2;
  cfg.zipf_theta = 0.99;  // hot keys => real write-write conflicts
  YcsbRunner runner(db_.get(), table_, cfg);
  VirtualClock clk;
  ASSERT_TRUE(runner.Load(&clk).ok());
  auto result = runner.Run(clk.now());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->errors, 0u) << result->first_error.ToString();
  // Under SI semantics with a hot zipfian head, some conflicts are expected
  // but most operations must succeed.
  uint64_t updates = result->completed[static_cast<int>(OpType::kUpdate)];
  EXPECT_GT(updates, cfg.operations / 2);
  if (GetParam() != VersionScheme::kSi) {
    EXPECT_EQ(table_->heap()->stats().inplace_invalidations, 0u);
  } else {
    EXPECT_GT(table_->heap()->stats().inplace_invalidations, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, YcsbTest,
                         ::testing::Values(VersionScheme::kSi,
                                           VersionScheme::kSiasChains,
                                           VersionScheme::kSiasV),
                         [](const auto& info) {
                           std::string n = sias::ToString(info.param);
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace ycsb
}  // namespace sias
