// Scheme-parameterized MVCC tests: the same battery runs against the SI
// baseline, SIAS-Chains and SIAS-V, checking that all three provide
// identical Snapshot Isolation semantics while differing in their physical
// behaviour (verified by the scheme-specific tests at the bottom).
#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "mvcc/visibility.h"
#include "tests/test_env.h"

namespace sias {
namespace {

class MvccSchemeTest : public ::testing::TestWithParam<VersionScheme> {
 protected:
  void SetUp() override {
    env_ = std::make_unique<TestEnv>();
    table_ = env_->MakeTable(GetParam(), /*relation=*/1);
  }

  std::unique_ptr<Transaction> Begin() { return env_->txns_.Begin(&clk_); }
  Status Commit(Transaction* t) { return env_->txns_.Commit(t); }
  Status Abort(Transaction* t) { return env_->txns_.Abort(t); }

  /// Insert + commit helper; returns the VID.
  Vid InsertCommitted(const std::string& row) {
    auto t = Begin();
    auto vid = table_->Insert(t.get(), Slice(row));
    EXPECT_TRUE(vid.ok());
    EXPECT_TRUE(Commit(t.get()).ok());
    return *vid;
  }

  std::optional<std::string> ReadIn(Transaction* t, Vid vid) {
    auto r = table_->Read(t, vid);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  }

  std::unique_ptr<TestEnv> env_;
  std::unique_ptr<MvccTable> table_;
  VirtualClock clk_;
};

TEST_P(MvccSchemeTest, InsertReadBack) {
  Vid vid = InsertCommitted("row-zero");
  auto t = Begin();
  auto row = ReadIn(t.get(), vid);
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(*row, "row-zero");
  ASSERT_TRUE(Commit(t.get()).ok());
}

TEST_P(MvccSchemeTest, OwnUncommittedWritesVisibleToSelfOnly) {
  auto t1 = Begin();
  auto vid = table_->Insert(t1.get(), Slice("mine"));
  ASSERT_TRUE(vid.ok());
  EXPECT_EQ(ReadIn(t1.get(), *vid).value_or(""), "mine");

  auto t2 = Begin();
  EXPECT_FALSE(ReadIn(t2.get(), *vid).has_value());
  ASSERT_TRUE(Commit(t1.get()).ok());
  // t2's snapshot predates the commit: still invisible.
  EXPECT_FALSE(ReadIn(t2.get(), *vid).has_value());
  ASSERT_TRUE(Commit(t2.get()).ok());

  auto t3 = Begin();
  EXPECT_TRUE(ReadIn(t3.get(), *vid).has_value());
  ASSERT_TRUE(Commit(t3.get()).ok());
}

TEST_P(MvccSchemeTest, UpdateCreatesNewVisibleVersion) {
  Vid vid = InsertCommitted("v0");
  auto t = Begin();
  ASSERT_TRUE(table_->Update(t.get(), vid, Slice("v1")).ok());
  EXPECT_EQ(ReadIn(t.get(), vid).value_or(""), "v1");  // own write
  ASSERT_TRUE(Commit(t.get()).ok());

  auto t2 = Begin();
  EXPECT_EQ(ReadIn(t2.get(), vid).value_or(""), "v1");
  ASSERT_TRUE(Commit(t2.get()).ok());
}

TEST_P(MvccSchemeTest, SnapshotReadersSeeOldVersionDuringUpdate) {
  Vid vid = InsertCommitted("old");
  auto reader = Begin();  // snapshot taken now

  auto writer = Begin();
  ASSERT_TRUE(table_->Update(writer.get(), vid, Slice("new")).ok());
  ASSERT_TRUE(Commit(writer.get()).ok());

  // Reader started before the update committed: sees the old version.
  EXPECT_EQ(ReadIn(reader.get(), vid).value_or(""), "old");
  ASSERT_TRUE(Commit(reader.get()).ok());

  auto later = Begin();
  EXPECT_EQ(ReadIn(later.get(), vid).value_or(""), "new");
  ASSERT_TRUE(Commit(later.get()).ok());
}

TEST_P(MvccSchemeTest, LongVersionHistoryEachSnapshotSeesItsVersion) {
  Vid vid = InsertCommitted("v0");
  std::vector<std::unique_ptr<Transaction>> readers;
  for (int i = 1; i <= 5; ++i) {
    readers.push_back(Begin());  // snapshot before update i
    auto t = Begin();
    ASSERT_TRUE(
        table_->Update(t.get(), vid, Slice("v" + std::to_string(i))).ok());
    ASSERT_TRUE(Commit(t.get()).ok());
  }
  // Reader i (0-based) was started when version v{i} was newest.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(ReadIn(readers[i].get(), vid).value_or(""),
              "v" + std::to_string(i));
  }
  for (auto& r : readers) ASSERT_TRUE(Commit(r.get()).ok());
}

TEST_P(MvccSchemeTest, AbortedUpdateInvisible) {
  Vid vid = InsertCommitted("keep");
  auto t = Begin();
  ASSERT_TRUE(table_->Update(t.get(), vid, Slice("discard")).ok());
  ASSERT_TRUE(Abort(t.get()).ok());
  auto t2 = Begin();
  EXPECT_EQ(ReadIn(t2.get(), vid).value_or(""), "keep");
  ASSERT_TRUE(Commit(t2.get()).ok());
}

TEST_P(MvccSchemeTest, AbortedInsertInvisible) {
  auto t = Begin();
  auto vid = table_->Insert(t.get(), Slice("phantom"));
  ASSERT_TRUE(vid.ok());
  ASSERT_TRUE(Abort(t.get()).ok());
  auto t2 = Begin();
  EXPECT_FALSE(ReadIn(t2.get(), *vid).has_value());
  ASSERT_TRUE(Commit(t2.get()).ok());
}

TEST_P(MvccSchemeTest, FirstUpdaterWinsOnConflict) {
  Vid vid = InsertCommitted("base");
  auto t1 = Begin();
  auto t2 = Begin();
  ASSERT_TRUE(table_->Update(t1.get(), vid, Slice("t1-wins")).ok());
  ASSERT_TRUE(Commit(t1.get()).ok());
  // t2 started before t1 committed; its update must fail (SI rules).
  Status s = table_->Update(t2.get(), vid, Slice("t2-loses"));
  EXPECT_TRUE(s.IsSerializationFailure() || s.IsLockTimeout())
      << s.ToString();
  ASSERT_TRUE(Abort(t2.get()).ok());
  auto t3 = Begin();
  EXPECT_EQ(ReadIn(t3.get(), vid).value_or(""), "t1-wins");
  ASSERT_TRUE(Commit(t3.get()).ok());
}

TEST_P(MvccSchemeTest, WaitingUpdaterAbortsAfterHolderCommits) {
  Vid vid = InsertCommitted("base");
  auto t1 = Begin();
  ASSERT_TRUE(table_->Update(t1.get(), vid, Slice("held")).ok());

  std::thread waiter([&] {
    VirtualClock clk;
    auto t2 = env_->txns_.Begin(&clk);
    // Blocks on the row lock until t1 commits, then must lose.
    Status s = table_->Update(t2.get(), vid, Slice("late"));
    EXPECT_TRUE(s.IsSerializationFailure() || s.IsLockTimeout())
        << s.ToString();
    EXPECT_TRUE(env_->txns_.Abort(t2.get()).ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(Commit(t1.get()).ok());
  waiter.join();
}

TEST_P(MvccSchemeTest, WaitingUpdaterProceedsAfterHolderAborts) {
  Vid vid = InsertCommitted("base");
  auto t1 = Begin();
  ASSERT_TRUE(table_->Update(t1.get(), vid, Slice("doomed")).ok());

  std::thread waiter([&] {
    VirtualClock clk;
    auto t2 = env_->txns_.Begin(&clk);
    Status s = table_->Update(t2.get(), vid, Slice("winner"));
    EXPECT_TRUE(s.ok()) << s.ToString();
    EXPECT_TRUE(env_->txns_.Commit(t2.get()).ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(Abort(t1.get()).ok());
  waiter.join();

  auto t3 = Begin();
  EXPECT_EQ(ReadIn(t3.get(), vid).value_or(""), "winner");
  ASSERT_TRUE(Commit(t3.get()).ok());
}

TEST_P(MvccSchemeTest, DeleteHidesFromNewSnapshotsKeepsForOld) {
  Vid vid = InsertCommitted("to-delete");
  auto old_reader = Begin();
  auto deleter = Begin();
  ASSERT_TRUE(table_->Delete(deleter.get(), vid).ok());
  ASSERT_TRUE(Commit(deleter.get()).ok());

  // Old snapshot still sees the last committed state before the delete.
  EXPECT_EQ(ReadIn(old_reader.get(), vid).value_or(""), "to-delete");
  ASSERT_TRUE(Commit(old_reader.get()).ok());

  auto new_reader = Begin();
  EXPECT_FALSE(ReadIn(new_reader.get(), vid).has_value());
  ASSERT_TRUE(Commit(new_reader.get()).ok());
}

TEST_P(MvccSchemeTest, UpdateOfDeletedItemFails) {
  Vid vid = InsertCommitted("gone");
  auto t = Begin();
  ASSERT_TRUE(table_->Delete(t.get(), vid).ok());
  ASSERT_TRUE(Commit(t.get()).ok());
  auto t2 = Begin();
  Status s = table_->Update(t2.get(), vid, Slice("zombie"));
  EXPECT_TRUE(s.IsNotFound()) << s.ToString();
  ASSERT_TRUE(Abort(t2.get()).ok());
}

TEST_P(MvccSchemeTest, UpdateNonexistentVidFails) {
  auto t = Begin();
  Status s = table_->Update(t.get(), 424242, Slice("x"));
  EXPECT_TRUE(s.IsNotFound());
  ASSERT_TRUE(Abort(t.get()).ok());
}

TEST_P(MvccSchemeTest, MultipleUpdatesInOneTransaction) {
  Vid vid = InsertCommitted("a");
  auto t = Begin();
  ASSERT_TRUE(table_->Update(t.get(), vid, Slice("b")).ok());
  ASSERT_TRUE(table_->Update(t.get(), vid, Slice("c")).ok());
  ASSERT_TRUE(table_->Update(t.get(), vid, Slice("d")).ok());
  EXPECT_EQ(ReadIn(t.get(), vid).value_or(""), "d");
  ASSERT_TRUE(Commit(t.get()).ok());
  auto t2 = Begin();
  EXPECT_EQ(ReadIn(t2.get(), vid).value_or(""), "d");
  ASSERT_TRUE(Commit(t2.get()).ok());
}

TEST_P(MvccSchemeTest, InsertAndUpdateSameTransaction) {
  auto t = Begin();
  auto vid = table_->Insert(t.get(), Slice("fresh"));
  ASSERT_TRUE(vid.ok());
  ASSERT_TRUE(table_->Update(t.get(), *vid, Slice("updated")).ok());
  ASSERT_TRUE(Commit(t.get()).ok());
  auto t2 = Begin();
  EXPECT_EQ(ReadIn(t2.get(), *vid).value_or(""), "updated");
  ASSERT_TRUE(Commit(t2.get()).ok());
}

TEST_P(MvccSchemeTest, ReadMultiMatchesSequentialReadOracle) {
  // The resumable batched read path (up to io_depth page reads in flight)
  // must be indistinguishable from a sequential Read() loop, across version
  // histories, tombstones, and an old snapshot that predates the churn.
  constexpr int kItems = 64;
  std::vector<Vid> vids;
  for (int i = 0; i < kItems; ++i) {
    vids.push_back(InsertCommitted("base" + std::to_string(i)));
  }
  auto old_snap = Begin();
  for (int i = 0; i < kItems; ++i) {
    auto t = Begin();
    if (i % 5 == 0) {
      ASSERT_TRUE(table_->Delete(t.get(), vids[i]).ok());
    } else if (i % 2 == 0) {
      ASSERT_TRUE(table_->Update(t.get(), vids[i],
                                 Slice("new" + std::to_string(i)))
                      .ok());
    }
    ASSERT_TRUE(Commit(t.get()).ok());
  }

  // Batch with repeats and shuffled order, so result[i] must track input
  // order, not storage order.
  std::vector<Vid> batch;
  for (int i = kItems - 1; i >= 0; --i) batch.push_back(vids[i]);
  for (int i = 0; i < kItems; i += 7) batch.push_back(vids[i]);

  for (Transaction* reader : {old_snap.get(), (Transaction*)nullptr}) {
    std::unique_ptr<Transaction> fresh;
    if (reader == nullptr) {
      fresh = Begin();
      reader = fresh.get();
    }
    for (size_t depth : {size_t{1}, size_t{4}, size_t{8}}) {
      std::vector<std::optional<std::string>> rows;
      ASSERT_TRUE(table_->ReadMulti(reader, batch, depth, &rows).ok());
      ASSERT_EQ(rows.size(), batch.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        auto oracle = table_->Read(reader, batch[i]);
        ASSERT_TRUE(oracle.ok());
        EXPECT_EQ(rows[i], *oracle) << "vid " << batch[i] << " depth "
                                    << depth;
      }
    }
    ASSERT_TRUE(Commit(reader).ok());
  }
}

TEST_P(MvccSchemeTest, ScanSeesExactlyVisibleItems) {
  Vid a = InsertCommitted("alpha");
  Vid b = InsertCommitted("beta");
  Vid c = InsertCommitted("gamma");
  // Delete b; update c; leave one uncommitted insert.
  {
    auto t = Begin();
    ASSERT_TRUE(table_->Delete(t.get(), b).ok());
    ASSERT_TRUE(table_->Update(t.get(), c, Slice("gamma2")).ok());
    ASSERT_TRUE(Commit(t.get()).ok());
  }
  auto pending = Begin();
  ASSERT_TRUE(table_->Insert(pending.get(), Slice("invisible")).ok());

  auto t = Begin();
  std::map<Vid, std::string> seen;
  ASSERT_TRUE(table_
                  ->Scan(t.get(),
                         [&](Vid vid, Slice row) {
                           seen[vid] = row.ToString();
                           return true;
                         })
                  .ok());
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[a], "alpha");
  EXPECT_EQ(seen[c], "gamma2");
  ASSERT_TRUE(Commit(t.get()).ok());
  ASSERT_TRUE(Abort(pending.get()).ok());
}

TEST_P(MvccSchemeTest, ScanEarlyStop) {
  for (int i = 0; i < 10; ++i) InsertCommitted("row" + std::to_string(i));
  auto t = Begin();
  int count = 0;
  ASSERT_TRUE(table_->Scan(t.get(), [&](Vid, Slice) {
    return ++count < 3;
  }).ok());
  EXPECT_EQ(count, 3);
  ASSERT_TRUE(Commit(t.get()).ok());
}

TEST_P(MvccSchemeTest, ManyItemsStressWithInterleavedSnapshots) {
  constexpr int kItems = 200;
  std::vector<Vid> vids;
  for (int i = 0; i < kItems; ++i) {
    vids.push_back(InsertCommitted("i" + std::to_string(i)));
  }
  auto snap_before = Begin();
  for (int i = 0; i < kItems; i += 2) {
    auto t = Begin();
    ASSERT_TRUE(
        table_->Update(t.get(), vids[i], Slice("u" + std::to_string(i))).ok());
    ASSERT_TRUE(Commit(t.get()).ok());
  }
  // Old snapshot: all originals. New snapshot: evens updated.
  for (int i = 0; i < kItems; i += 37) {
    EXPECT_EQ(ReadIn(snap_before.get(), vids[i]).value_or(""),
              "i" + std::to_string(i));
  }
  ASSERT_TRUE(Commit(snap_before.get()).ok());
  auto snap_after = Begin();
  for (int i = 0; i < kItems; i += 37) {
    std::string expect = (i % 2 == 0) ? "u" + std::to_string(i)
                                      : "i" + std::to_string(i);
    EXPECT_EQ(ReadIn(snap_after.get(), vids[i]).value_or(""), expect);
  }
  ASSERT_TRUE(Commit(snap_after.get()).ok());
}

TEST_P(MvccSchemeTest, GarbageCollectionPreservesVisibleState) {
  constexpr int kItems = 50;
  std::vector<Vid> vids;
  for (int i = 0; i < kItems; ++i) {
    vids.push_back(InsertCommitted("x"));
  }
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < kItems; ++i) {
      auto t = Begin();
      ASSERT_TRUE(table_
                      ->Update(t.get(), vids[i],
                               Slice("r" + std::to_string(round) + "-" +
                                     std::to_string(i)))
                      .ok());
      ASSERT_TRUE(Commit(t.get()).ok());
    }
  }
  GcStats gc;
  ASSERT_TRUE(
      table_->GarbageCollect(env_->txns_.GcHorizon(), &clk_, &gc).ok());
  EXPECT_GT(gc.versions_discarded, 0u);

  auto t = Begin();
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(ReadIn(t.get(), vids[i]).value_or(""),
              "r5-" + std::to_string(i))
        << "item " << i;
  }
  ASSERT_TRUE(Commit(t.get()).ok());
}

TEST_P(MvccSchemeTest, GcRespectsOldSnapshots) {
  Vid vid = InsertCommitted("ancient");
  auto old_reader = Begin();  // holds the horizon back
  for (int i = 0; i < 5; ++i) {
    auto t = Begin();
    ASSERT_TRUE(table_->Update(t.get(), vid, Slice("new")).ok());
    ASSERT_TRUE(Commit(t.get()).ok());
  }
  GcStats gc;
  ASSERT_TRUE(
      table_->GarbageCollect(env_->txns_.GcHorizon(), &clk_, &gc).ok());
  // The old reader must still see its version.
  EXPECT_EQ(ReadIn(old_reader.get(), vid).value_or(""), "ancient");
  ASSERT_TRUE(Commit(old_reader.get()).ok());
}

TEST_P(MvccSchemeTest, GcRemovesTombstonedItems) {
  Vid vid = InsertCommitted("die");
  {
    auto t = Begin();
    ASSERT_TRUE(table_->Delete(t.get(), vid).ok());
    ASSERT_TRUE(Commit(t.get()).ok());
  }
  GcStats gc;
  ASSERT_TRUE(
      table_->GarbageCollect(env_->txns_.GcHorizon(), &clk_, &gc).ok());
  EXPECT_GT(gc.versions_discarded, 0u);
  auto t = Begin();
  EXPECT_FALSE(ReadIn(t.get(), vid).has_value());
  ASSERT_TRUE(Commit(t.get()).ok());
}

TEST_P(MvccSchemeTest, ConcurrentDisjointWritersAllSucceed) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::vector<Vid>> vids(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      vids[t].push_back(InsertCommitted("init"));
    }
  }
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      VirtualClock clk;
      for (int i = 0; i < kPerThread; ++i) {
        auto txn = env_->txns_.Begin(&clk);
        Status s = table_->Update(txn.get(), vids[t][i],
                                  Slice("t" + std::to_string(t)));
        if (s.ok()) {
          if (!env_->txns_.Commit(txn.get()).ok()) failures++;
        } else {
          failures++;
          (void)env_->txns_.Abort(txn.get());
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  auto t = Begin();
  for (int th = 0; th < kThreads; ++th) {
    for (int i = 0; i < kPerThread; i += 7) {
      EXPECT_EQ(ReadIn(t.get(), vids[th][i]).value_or(""),
                "t" + std::to_string(th));
    }
  }
  ASSERT_TRUE(Commit(t.get()).ok());
}

TEST_P(MvccSchemeTest, ConcurrentContendedWritersSerialize) {
  Vid vid = InsertCommitted("contended");
  constexpr int kThreads = 4;
  std::atomic<int> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      VirtualClock clk;
      for (int i = 0; i < 25; ++i) {
        auto txn = env_->txns_.Begin(&clk);
        Status s = table_->Update(txn.get(), vid, Slice("w"));
        if (s.ok() && env_->txns_.Commit(txn.get()).ok()) {
          committed++;
        } else if (txn->state() == TxnState::kActive) {
          (void)env_->txns_.Abort(txn.get());
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // At least some must commit; the item must end in a consistent state.
  EXPECT_GT(committed.load(), 0);
  auto t = Begin();
  EXPECT_EQ(ReadIn(t.get(), vid).value_or(""), "w");
  ASSERT_TRUE(Commit(t.get()).ok());
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, MvccSchemeTest,
                         ::testing::Values(VersionScheme::kSi,
                                           VersionScheme::kSiasChains,
                                           VersionScheme::kSiasV),
                         [](const auto& info) {
                           std::string n = ToString(info.param);
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// ---------------------------------------------------------------------------
// Scheme-specific physical behaviour.
// ---------------------------------------------------------------------------

class PhysicalBehaviourTest : public ::testing::Test {
 protected:
  void SetUp() override { env_ = std::make_unique<TestEnv>(); }
  std::unique_ptr<TestEnv> env_;
  VirtualClock clk_;
};

TEST_F(PhysicalBehaviourTest, SiDirtiesOldPageSiasDoesNot) {
  // The paper's Figure 1 in miniature: after updates, SI must have dirtied
  // the page holding the OLD version (in-place xmax); SIAS must not.
  for (VersionScheme scheme :
       {VersionScheme::kSi, VersionScheme::kSiasChains}) {
    TestEnv env;
    auto table = env.MakeTable(scheme, 1);
    auto t0 = env.txns_.Begin(&clk_);
    auto vid = table->Insert(t0.get(), Slice("v0"));
    ASSERT_TRUE(vid.ok());
    ASSERT_TRUE(env.txns_.Commit(t0.get()).ok());
    // Flush everything so all pages start clean.
    ASSERT_TRUE(env.pool_.FlushAll(&clk_).ok());
    size_t dirty_before = env.pool_.DirtyPages().size();
    ASSERT_EQ(dirty_before, 0u);

    auto t1 = env.txns_.Begin(&clk_);
    ASSERT_TRUE(table->Update(t1.get(), *vid, Slice("v1")).ok());
    ASSERT_TRUE(env.txns_.Commit(t1.get()).ok());

    size_t dirty_after = env.pool_.DirtyPages().size();
    TableStats ts = table->stats();
    if (scheme == VersionScheme::kSi) {
      // Old version's page stamped in place + new version placed: the heap
      // page(s) are dirty and an in-place invalidation was recorded.
      EXPECT_GE(ts.inplace_invalidations, 1u);
      EXPECT_GE(dirty_after, 1u);
    } else {
      // SIAS: only the append page is dirty; zero in-place invalidations.
      EXPECT_EQ(ts.inplace_invalidations, 0u);
      EXPECT_EQ(dirty_after, 1u);
    }
  }
}

TEST_F(PhysicalBehaviourTest, SiasChainsHaveCorrectStructure) {
  TestEnv env;
  auto table_ptr = env.MakeTable(VersionScheme::kSiasChains, 1);
  auto* table = static_cast<SiasTable*>(table_ptr.get());
  auto t0 = env.txns_.Begin(&clk_);
  auto vid = table->Insert(t0.get(), Slice("v0"));
  ASSERT_TRUE(vid.ok());
  ASSERT_TRUE(env.txns_.Commit(t0.get()).ok());
  for (int i = 1; i <= 4; ++i) {
    auto t = env.txns_.Begin(&clk_);
    ASSERT_TRUE(
        table->Update(t.get(), *vid, Slice("v" + std::to_string(i))).ok());
    ASSERT_TRUE(env.txns_.Commit(t.get()).ok());
  }
  auto chain = table->ChainOf(*vid, &clk_);
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain->size(), 5u);  // v4 -> v3 -> v2 -> v1 -> v0
  // Entrypoint is the newest version; creation timestamps strictly decrease
  // along the chain (chronological order invariant).
  Xid prev_xmin = ~0ull;
  for (Tid tid : *chain) {
    auto page = env.pool_.FetchPage(PageId{1, tid.page}, &clk_);
    ASSERT_TRUE(page.ok());
    page->LatchShared();
    TupleHeader h;
    ASSERT_TRUE(DecodeTupleHeader(page->page().GetTuple(tid.slot), &h));
    page->Unlatch();
    EXPECT_LT(h.xmin, prev_xmin);
    prev_xmin = h.xmin;
    EXPECT_EQ(h.vid, *vid);
    EXPECT_EQ(h.xmax, kInvalidXid);  // never stamped: no in-place invalidation
  }
}

TEST_F(PhysicalBehaviourTest, SiasVVectorTracksVersionsNewestFirst) {
  TestEnv env;
  auto table_ptr = env.MakeTable(VersionScheme::kSiasV, 1);
  auto* table = static_cast<SiasTable*>(table_ptr.get());
  auto t0 = env.txns_.Begin(&clk_);
  auto vid = table->Insert(t0.get(), Slice("v0"));
  ASSERT_TRUE(vid.ok());
  ASSERT_TRUE(env.txns_.Commit(t0.get()).ok());
  for (int i = 1; i <= 3; ++i) {
    auto t = env.txns_.Begin(&clk_);
    ASSERT_TRUE(
        table->Update(t.get(), *vid, Slice("v" + std::to_string(i))).ok());
    ASSERT_TRUE(env.txns_.Commit(t.get()).ok());
  }
  std::vector<Tid> vec = table->vid_map_v().Get(*vid);
  ASSERT_EQ(vec.size(), 4u);
  // Newest first: the entrypoint resolves to "v3".
  auto t = env.txns_.Begin(&clk_);
  auto row = table->Read(t.get(), *vid);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->value_or(""), "v3");
  ASSERT_TRUE(env.txns_.Commit(t.get()).ok());
}

TEST_F(PhysicalBehaviourTest, SiasCoLocatesRecentVersions) {
  // Versions created together land on the same append page (co-location),
  // while SI scatters them by free space.
  TestEnv env;
  auto table_ptr = env.MakeTable(VersionScheme::kSiasChains, 1);
  auto* table = static_cast<SiasTable*>(table_ptr.get());
  std::vector<Vid> vids;
  auto t = env.txns_.Begin(&clk_);
  for (int i = 0; i < 20; ++i) {
    auto vid = table->Insert(t.get(), Slice("co-located-row"));
    ASSERT_TRUE(vid.ok());
    vids.push_back(*vid);
  }
  ASSERT_TRUE(env.txns_.Commit(t.get()).ok());
  std::set<PageNumber> pages;
  for (Vid v : vids) {
    pages.insert(table->vid_map().Get(v).page);
  }
  EXPECT_EQ(pages.size(), 1u);  // all 20 small rows fit one append page
}

TEST_F(PhysicalBehaviourTest, SiasVidMapScanTouchesFewerPagesThanFullScan) {
  TestEnv env;
  auto table_ptr = env.MakeTable(VersionScheme::kSiasChains, 1);
  auto* table = static_cast<SiasTable*>(table_ptr.get());
  // 50 items, 10 update rounds => 550 versions over many pages, only 50 live.
  std::vector<Vid> vids;
  for (int i = 0; i < 50; ++i) {
    auto t = env.txns_.Begin(&clk_);
    auto vid = table->Insert(t.get(), Slice(std::string(300, 'x')));
    ASSERT_TRUE(vid.ok());
    vids.push_back(*vid);
    ASSERT_TRUE(env.txns_.Commit(t.get()).ok());
  }
  for (int round = 0; round < 10; ++round) {
    for (Vid v : vids) {
      auto t = env.txns_.Begin(&clk_);
      ASSERT_TRUE(table->Update(t.get(), v, Slice(std::string(300, 'y'))).ok());
      ASSERT_TRUE(env.txns_.Commit(t.get()).ok());
    }
  }
  auto t1 = env.txns_.Begin(&clk_);
  int vidmap_rows = 0, full_rows = 0;
  uint64_t misses_before = env.pool_.stats().misses;
  ASSERT_TRUE(table->Scan(t1.get(), [&](Vid, Slice) {
    vidmap_rows++;
    return true;
  }).ok());
  ASSERT_TRUE(table->FullRelationScan(t1.get(), [&](Vid, Slice) {
    full_rows++;
    return true;
  }).ok());
  (void)misses_before;
  EXPECT_EQ(vidmap_rows, 50);
  EXPECT_EQ(full_rows, 50);
  ASSERT_TRUE(env.txns_.Commit(t1.get()).ok());
}

TEST_F(PhysicalBehaviourTest, SiasGcReclaimsAndRecyclesPages) {
  TestEnv env;
  auto table_ptr = env.MakeTable(VersionScheme::kSiasChains, 1);
  auto* table = static_cast<SiasTable*>(table_ptr.get());
  std::vector<Vid> vids;
  for (int i = 0; i < 30; ++i) {
    auto t = env.txns_.Begin(&clk_);
    auto vid = table->Insert(t.get(), Slice(std::string(200, 'a')));
    ASSERT_TRUE(vid.ok());
    vids.push_back(*vid);
    ASSERT_TRUE(env.txns_.Commit(t.get()).ok());
  }
  for (int round = 0; round < 20; ++round) {
    for (Vid v : vids) {
      auto t = env.txns_.Begin(&clk_);
      ASSERT_TRUE(
          table->Update(t.get(), v, Slice(std::string(200, 'b'))).ok());
      ASSERT_TRUE(env.txns_.Commit(t.get()).ok());
    }
  }
  GcStats gc;
  ASSERT_TRUE(table->GarbageCollect(env.txns_.GcHorizon(), &clk_, &gc).ok());
  EXPECT_GT(gc.pages_reclaimed, 0u);
  EXPECT_GT(gc.versions_discarded, 100u);

  // Recycled pages get reused by further appends.
  uint64_t recycled_before = table->append_stats().pages_recycled;
  for (int i = 0; i < 200; ++i) {
    auto t = env.txns_.Begin(&clk_);
    ASSERT_TRUE(
        table->Update(t.get(), vids[0], Slice(std::string(200, 'c'))).ok());
    ASSERT_TRUE(env.txns_.Commit(t.get()).ok());
  }
  EXPECT_GT(table->append_stats().pages_recycled, recycled_before);

  // All data still correct.
  auto t = env.txns_.Begin(&clk_);
  auto row = table->Read(t.get(), vids[0]);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->value_or(""), std::string(200, 'c'));
  ASSERT_TRUE(env.txns_.Commit(t.get()).ok());
}

}  // namespace
}  // namespace sias
